"""The durable page store: a crash-consistent file-backed backend.

:class:`DurableBackend` is the third storage backend (DESIGN.md
section 16).  Where :class:`~repro.storage.backend.FileBackend` writes
real files with accidental durability semantics, this store survives
``SIGKILL`` at any instant and reopens to exactly the state its last
acknowledged operation left behind:

- **data file** (``pages.data``) — a persistent header (magic, format
  version, page size, epoch) followed by fixed-size page slots, each
  carrying a crc32 checksum over (file id, page no, payload);
- **free list** — slots of deleted files are reused lowest-first, so
  the data file does not grow without bound under churn;
- **write-ahead log** (:mod:`repro.storage.wal`) — every mutation is
  logged and fsynced *before* the data file is touched; recovery on
  open replays committed records (idempotent physical redo, which heals
  torn data-page writes), truncates the log's torn tail, bumps the
  header epoch, and checkpoints;
- **checkpoint** (``checkpoint.json``, written atomically) — the full
  catalog (name -> file id -> page -> slot mapping), the free list, and
  the LSN up to which the data file is known durable; the log is reset
  after every checkpoint.

The simulated I/O ledger never sees any of this: the buffer pool above
counts the same logical transfers no matter which backend is plugged
in, so ledger metrics are byte-identical across ``memory``/``disk``/
``durable`` for fault-free runs (parity-gated in the tests).

Crash points: the ``crash_point`` hook (or the ``REPRO_DURABLE_CRASH``
environment variable, used by the kill-and-reopen harness in
:mod:`repro.verify.crash`) makes the store die — really ``SIGKILL``
itself, or raise :class:`SimulatedCrash` for in-process tests — at a
named instant: mid-WAL-append (a torn log tail), after the WAL fsync
but before the data write, mid-data-write (a torn page), around a
rename, or mid-checkpoint.  Every one of them must recover to the last
acknowledged state; that is what ``repro verify --crash`` samples.
"""

from __future__ import annotations

import heapq
import json
import os
import signal
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, BinaryIO

from repro.storage import wal
from repro.storage.backend import BackendClosedError, Record, StorageBackend
from repro.storage.records import RecordCodec

MAGIC = b"S3JPAGES"
FORMAT_VERSION = 1
HEADER_SIZE = 64
_HEADER = struct.Struct("<8sIIQI")  # magic, version, page size, epoch, crc
_SLOT_HEADER = struct.Struct("<IIQQ")  # crc, payload length, file id, page no
_COUNT = struct.Struct("<I")  # record count, first field of a payload

DATA_FILE = "pages.data"
CHECKPOINT_FILE = "checkpoint.json"
CHECKPOINT_SCHEMA = 1

DEFAULT_CHECKPOINT_BYTES = 1024 * 1024
"""WAL bytes that trigger an automatic checkpoint (and log reset)."""

CRASH_ENV = "REPRO_DURABLE_CRASH"
"""JSON crash-point spec consumed at construction — the kill-and-reopen
harness plants it in the child's environment."""

CRASH_POINTS = (
    "wal-append",
    "wal-synced",
    "data-write",
    "rename",
    "checkpoint",
)


class DurableStoreError(RuntimeError):
    """A structural store problem: bad header, checksum, or catalog."""


class SimulatedCrash(BaseException):
    """An in-process stand-in for ``SIGKILL`` (crash_point action
    ``raise``): derives from ``BaseException`` so no recovery path in
    the library can absorb it, and the test reopens the directory with
    a fresh store exactly as a restarted process would."""


@dataclass(frozen=True)
class CrashPoint:
    """Die at the ``index``-th occurrence of a named instant.

    ``fraction`` applies to the partial-write points (``wal-append``,
    ``data-write``): that fraction of the record/block bytes reaches
    the file before death.  ``action`` is ``kill`` (a genuine
    ``SIGKILL`` to the current process — subprocess harness) or
    ``raise`` (:class:`SimulatedCrash` — in-process tests).
    """

    point: str
    index: int = 0
    fraction: float = 0.5
    action: str = "kill"

    def __post_init__(self) -> None:
        if self.point not in CRASH_POINTS:
            raise ValueError(
                f"unknown crash point {self.point!r}; choose from {CRASH_POINTS}"
            )
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("crash fraction must be within [0, 1]")
        if self.action not in ("kill", "raise"):
            raise ValueError("crash action must be 'kill' or 'raise'")

    def to_env(self) -> str:
        return json.dumps(
            {
                "point": self.point,
                "index": self.index,
                "fraction": self.fraction,
                "action": self.action,
            }
        )

    @classmethod
    def from_env(cls, text: str) -> CrashPoint:
        data = json.loads(text)
        return cls(
            point=str(data["point"]),
            index=int(data.get("index", 0)),
            fraction=float(data.get("fraction", 0.5)),
            action=str(data.get("action", "kill")),
        )


@dataclass
class RecoveryReport:
    """What one open-with-recovery did (surfaced by the crash harness)."""

    replayed_records: int = 0
    healed_pages: int = 0
    truncated_bytes: int = 0
    dropped_segments: int = 0
    epoch: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "replayed_records": self.replayed_records,
            "healed_pages": self.healed_pages,
            "truncated_bytes": self.truncated_bytes,
            "dropped_segments": self.dropped_segments,
            "epoch": self.epoch,
        }


@dataclass
class _FileEntry:
    """Catalog row: one logical paged file."""

    file_id: int
    name: str
    record_size: int
    capacity: int
    pages: dict[int, int] = field(default_factory=dict)  # page no -> slot


class DurableBackend(StorageBackend):
    """Crash-consistent page store; see the module docstring."""

    def __init__(
        self,
        directory: str | os.PathLike[str],
        page_size: int | None = None,
        segment_bytes: int = wal.DEFAULT_SEGMENT_BYTES,
        checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES,
        crash_point: CrashPoint | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if crash_point is None and os.environ.get(CRASH_ENV):
            crash_point = CrashPoint.from_env(os.environ[CRASH_ENV])
        self._crash = crash_point
        self._crash_counts: dict[str, int] = {}
        self.checkpoint_bytes = checkpoint_bytes
        self._segment_bytes = segment_bytes
        self._entries: dict[int, _FileEntry] = {}  # file id -> entry
        self._names: dict[str, int] = {}  # name -> file id
        self._codecs: dict[str, RecordCodec] = {}
        self._free: list[int] = []  # heap of free slots
        self._next_slot = 0
        self._next_file_id = 1
        self._next_lsn = 1
        self.epoch = 0
        self.last_recovery: RecoveryReport | None = None
        self._closed = False

        data_path = self.directory / DATA_FILE
        if data_path.exists():
            self.page_size = self._read_header()
            if page_size is not None and page_size != self.page_size:
                raise DurableStoreError(
                    f"store at {self.directory} uses page size "
                    f"{self.page_size}, configuration asked for {page_size}"
                )
            self._data: BinaryIO = open(data_path, "r+b")
            self._recover()
        else:
            if page_size is None:
                raise DurableStoreError(
                    "creating a durable store needs an explicit page size"
                )
            self.page_size = page_size
            self._data = open(data_path, "w+b")
            self.epoch = 1
            self._write_header()
            os.fsync(self._data.fileno())
            self._wal = wal.WriteAheadLog(
                self.directory, self._segment_bytes, start_sequence=1
            )
            self._write_checkpoint()

    # -- layout ----------------------------------------------------------

    @property
    def _block_size(self) -> int:
        # Worst-case payload: the 4-byte record count plus a full page
        # of record bytes, whatever the codec.
        return _SLOT_HEADER.size + _COUNT.size + self.page_size

    def _slot_offset(self, slot: int) -> int:
        return HEADER_SIZE + slot * self._block_size

    def _write_header(self) -> None:
        packed = _HEADER.pack(
            MAGIC,
            FORMAT_VERSION,
            self.page_size,
            self.epoch,
            zlib.crc32(
                struct.pack("<IIQ", FORMAT_VERSION, self.page_size, self.epoch)
            ),
        )
        self._data.seek(0)
        self._data.write(packed + b"\x00" * (HEADER_SIZE - len(packed)))
        self._data.flush()

    def _read_header(self) -> int:
        with open(self.directory / DATA_FILE, "rb") as handle:
            blob = handle.read(HEADER_SIZE)
        if len(blob) < _HEADER.size:
            raise DurableStoreError("data file too short to hold a header")
        magic, version, page_size, epoch, crc = _HEADER.unpack_from(blob, 0)
        if magic != MAGIC:
            raise DurableStoreError(f"bad store magic {magic!r}")
        if version != FORMAT_VERSION:
            raise DurableStoreError(f"unsupported store format {version}")
        if crc != zlib.crc32(struct.pack("<IIQ", version, page_size, epoch)):
            raise DurableStoreError("store header checksum mismatch")
        self.epoch = epoch
        return page_size

    # -- crash-point hooks ----------------------------------------------

    def _crash_due(self, point: str) -> bool:
        if self._crash is None or self._crash.point != point:
            return False
        count = self._crash_counts.get(point, 0)
        self._crash_counts[point] = count + 1
        return count == self._crash.index

    def _die(self) -> None:
        assert self._crash is not None
        if self._crash.action == "raise":
            raise SimulatedCrash(f"simulated crash at {self._crash.point}")
        os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover - harness

    def _maybe_crash(self, point: str) -> None:
        if self._crash_due(point):
            self._die()

    def _partial_then_die(self, handle: Any, data: bytes) -> None:
        """Persist a prefix of ``data`` (through to the medium, so the
        torn state is what recovery really reads) and die."""
        assert self._crash is not None
        handle.write(data[: int(len(data) * self._crash.fraction)])
        handle.flush()
        os.fsync(handle.fileno())
        self._die()

    # -- recovery ---------------------------------------------------------

    def _recover(self) -> None:
        report = RecoveryReport()
        checkpoint_lsn = self._load_checkpoint()
        healed: set[tuple[int, int]] = set()

        def apply(record: wal.WalRecord) -> None:
            if record.lsn < self._next_lsn:
                return  # already reflected by the checkpoint
            self._replay(record, report, healed)
            self._next_lsn = record.lsn + 1

        scan = wal.scan_segments(self.directory, apply)
        report.truncated_bytes = scan.truncated_bytes
        report.dropped_segments = scan.dropped_segments
        report.healed_pages = len(healed)
        # Recovery is itself a recovery point: bump the epoch, persist
        # everything, and reset the log so a second open of the same
        # directory replays nothing (double-reopen idempotence).
        self.epoch += 1
        report.epoch = self.epoch
        self._write_header()
        self._wal = wal.WriteAheadLog(
            self.directory,
            self._segment_bytes,
            start_sequence=max(
                (wal.segment_sequence(p) for p in wal.list_segments(self.directory)),
                default=0,
            )
            + 1,
        )
        self._write_checkpoint()
        self.last_recovery = report
        if checkpoint_lsn == 0 and scan.records == 0:
            report.replayed_records = 0

    def _load_checkpoint(self) -> int:
        path = self.directory / CHECKPOINT_FILE
        if not path.exists():
            # A store that died before its very first checkpoint: the
            # WAL (possibly empty) is the entire history.
            self._next_lsn = 1
            return 0
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("schema") != CHECKPOINT_SCHEMA:
            raise DurableStoreError(
                f"unsupported checkpoint schema {data.get('schema')!r}"
            )
        self._next_file_id = int(data["next_file_id"])
        self._next_slot = int(data["next_slot"])
        self._free = [int(slot) for slot in data["free"]]
        heapq.heapify(self._free)
        for row in data["files"]:
            entry = _FileEntry(
                file_id=int(row["file_id"]),
                name=str(row["name"]),
                record_size=int(row["record_size"]),
                capacity=int(row["capacity"]),
                pages={
                    int(page_no): int(slot)
                    for page_no, slot in row["pages"].items()
                },
            )
            self._entries[entry.file_id] = entry
            self._names[entry.name] = entry.file_id
        lsn = int(data["lsn"])
        self._next_lsn = lsn + 1
        return lsn

    def _replay(
        self,
        record: wal.WalRecord,
        report: RecoveryReport,
        healed: set[tuple[int, int]],
    ) -> None:
        report.replayed_records += 1
        if record.op == wal.OP_WRITE:
            file_id, page_no, slot, payload = wal.unpack_write(record.body)
            entry = self._entries.get(file_id)
            if entry is None:
                raise DurableStoreError(
                    f"WAL write record {record.lsn} names unknown file "
                    f"id {file_id}"
                )
            # Idempotent physical redo: rewrite the slot from the log
            # unconditionally.  A torn or lost data write is healed; an
            # intact one is rewritten with identical bytes.
            if not self._slot_matches(entry, page_no, slot, payload):
                healed.add((file_id, page_no))
            self._write_slot(slot, entry.file_id, page_no, payload)
            entry.pages[page_no] = slot
            self._note_slot_used(slot)
        elif record.op == wal.OP_CREATE:
            file_id, record_size, capacity, name = wal.unpack_create(record.body)
            entry = _FileEntry(file_id, name, record_size, capacity)
            self._entries[file_id] = entry
            self._names[name] = file_id
            self._next_file_id = max(self._next_file_id, file_id + 1)
        elif record.op == wal.OP_DELETE:
            file_id = wal.unpack_delete(record.body)
            entry = self._entries.pop(file_id, None)
            if entry is not None:
                self._names.pop(entry.name, None)
                for slot in entry.pages.values():
                    heapq.heappush(self._free, slot)
        elif record.op == wal.OP_RENAME:
            file_id, new_name = wal.unpack_rename(record.body)
            entry = self._entries.get(file_id)
            if entry is None:
                raise DurableStoreError(
                    f"WAL rename record {record.lsn} names unknown file "
                    f"id {file_id}"
                )
            stale = self._names.pop(entry.name, None)
            if stale is not None and stale != file_id:  # pragma: no cover
                self._names[entry.name] = stale
            entry.name = new_name
            self._names[new_name] = file_id
        else:
            raise DurableStoreError(f"unknown WAL op {record.op}")

    def _slot_matches(
        self, entry: _FileEntry, page_no: int, slot: int, payload: bytes
    ) -> bool:
        """Whether the data file already holds this exact committed
        write (used only to report healed pages, not for correctness)."""
        if entry.pages.get(page_no) != slot:
            return False
        try:
            return self._read_slot(slot, entry.file_id, page_no) == payload
        except DurableStoreError:
            return False

    def _note_slot_used(self, slot: int) -> None:
        self._next_slot = max(self._next_slot, slot + 1)
        if slot in self._free:
            self._free.remove(slot)
            heapq.heapify(self._free)

    # -- slots ------------------------------------------------------------

    def _allocate_slot(self) -> int:
        if self._free:
            return heapq.heappop(self._free)
        slot = self._next_slot
        self._next_slot += 1
        return slot

    def _write_slot(
        self, slot: int, file_id: int, page_no: int, payload: bytes
    ) -> None:
        crc = zlib.crc32(payload, zlib.crc32(struct.pack("<QQ", file_id, page_no)))
        block = _SLOT_HEADER.pack(crc, len(payload), file_id, page_no) + payload
        block += b"\x00" * (self._block_size - len(block))
        offset = self._slot_offset(slot)
        end = self._data.seek(0, os.SEEK_END)
        if offset > end:
            self._data.write(b"\x00" * (offset - end))
        self._data.seek(offset)
        if self._crash_due("data-write"):
            self._partial_then_die(self._data, block)
        self._data.write(block)
        self._data.flush()

    def _read_slot(self, slot: int, file_id: int, page_no: int) -> bytes:
        self._data.seek(self._slot_offset(slot))
        block = self._data.read(self._block_size)
        if len(block) < _SLOT_HEADER.size:
            raise DurableStoreError(
                f"slot {slot} lies beyond the end of the data file"
            )
        crc, length, stored_file_id, stored_page_no = _SLOT_HEADER.unpack_from(
            block, 0
        )
        payload = block[_SLOT_HEADER.size : _SLOT_HEADER.size + length]
        if (
            len(payload) != length
            or (stored_file_id, stored_page_no) != (file_id, page_no)
            or crc
            != zlib.crc32(payload, zlib.crc32(struct.pack("<QQ", file_id, page_no)))
        ):
            raise DurableStoreError(
                f"checksum mismatch reading page {page_no} of file id "
                f"{file_id} (slot {slot})"
            )
        return payload

    # -- WAL plumbing -----------------------------------------------------

    def _log(self, op: int, body: bytes) -> None:
        record = wal.WalRecord(self._next_lsn, op, body)
        self._next_lsn += 1
        if self._crash_due("wal-append"):
            self._wal.append(record, partial_writer=self._partial_then_die)
        else:
            self._wal.append(record)
        self._wal.sync()  # the commit point: log before data, always
        self._maybe_crash("wal-synced")

    def _maybe_checkpoint(self) -> None:
        if self._wal.bytes_appended >= self.checkpoint_bytes:
            self.checkpoint()

    def checkpoint(self) -> None:
        """Make the log redundant: fsync the data file, persist the
        catalog atomically, then reset the log to a fresh segment."""
        self._data.flush()
        os.fsync(self._data.fileno())
        self._write_checkpoint()
        self._maybe_crash("checkpoint")
        self._wal.reset(self._wal.sequence + 1)

    def _write_checkpoint(self) -> None:
        payload = {
            "schema": CHECKPOINT_SCHEMA,
            "lsn": self._next_lsn - 1,
            "epoch": self.epoch,
            "page_size": self.page_size,
            "next_file_id": self._next_file_id,
            "next_slot": self._next_slot,
            "free": sorted(self._free),
            "files": [
                {
                    "file_id": entry.file_id,
                    "name": entry.name,
                    "record_size": entry.record_size,
                    "capacity": entry.capacity,
                    "pages": {
                        str(page_no): slot
                        for page_no, slot in sorted(entry.pages.items())
                    },
                }
                for entry in sorted(
                    self._entries.values(), key=lambda e: e.file_id
                )
            ],
        }
        # Inline atomic write (temp + fsync + rename) rather than
        # repro.obs.fileio to keep the storage layer import-light.
        path = self.directory / CHECKPOINT_FILE
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    # -- payload codec ----------------------------------------------------

    def _entry(self, name: str) -> _FileEntry:
        try:
            return self._entries[self._names[name]]
        except KeyError:
            raise FileNotFoundError(f"no storage file named {name!r}") from None

    def _encode_payload(self, name: str, records: list[Record]) -> bytes:
        codec = self._codecs[name]
        return _COUNT.pack(len(records)) + b"".join(
            codec.encode(record) for record in records
        )

    def _decode_payload(self, name: str, payload: bytes) -> list[Record]:
        codec = self._codecs[name]
        (count,) = _COUNT.unpack_from(payload, 0)
        records = []
        offset = _COUNT.size
        for _ in range(count):
            records.append(codec.decode(payload[offset : offset + codec.record_size]))
            offset += codec.record_size
        return records

    # -- StorageBackend ---------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise BackendClosedError("operation on a closed DurableBackend")

    def create_file(self, name: str, codec: RecordCodec, page_size: int) -> None:
        self._check_open()
        if name in self._names:
            raise FileExistsError(f"storage file {name!r} already exists")
        if page_size != self.page_size:
            raise ValueError(
                f"store page size is {self.page_size}, cannot create "
                f"{name!r} with page size {page_size}"
            )
        file_id = self._next_file_id
        self._next_file_id += 1
        capacity = codec.records_per_page(page_size)
        self._log(
            wal.OP_CREATE,
            wal.pack_create(file_id, codec.record_size, capacity, name),
        )
        self._entries[file_id] = _FileEntry(
            file_id, name, codec.record_size, capacity
        )
        self._names[name] = file_id
        self._codecs[name] = codec

    def attach_file(self, name: str, codec: RecordCodec, page_size: int) -> int:
        """Re-bind a codec to a file recovered from a previous process;
        returns the file's page count.  The reopen counterpart of
        :meth:`create_file`."""
        self._check_open()
        entry = self._entry(name)
        if page_size != self.page_size:
            raise ValueError(
                f"store page size is {self.page_size}, got {page_size}"
            )
        if codec.record_size != entry.record_size:
            raise ValueError(
                f"file {name!r} was written with {entry.record_size}-byte "
                f"records, codec expects {codec.record_size}"
            )
        self._codecs[name] = codec
        return len(entry.pages)

    def stored_files(self) -> list[str]:
        """Names of every file in the recovered catalog, sorted."""
        self._check_open()
        return sorted(self._names)

    def file_record_counts(self, name: str) -> list[int]:
        """Per-page record counts of one file, in page order (read from
        the slot payloads directly — no codec, no buffer pool, so
        attaching a file never perturbs the simulated ledger)."""
        self._check_open()
        entry = self._entry(name)
        counts = []
        for page_no in sorted(entry.pages):
            payload = self._read_slot(entry.pages[page_no], entry.file_id, page_no)
            counts.append(_COUNT.unpack_from(payload, 0)[0])
        return counts

    def delete_file(self, name: str) -> None:
        self._check_open()
        file_id = self._names.get(name)
        if file_id is None:
            return
        self._log(wal.OP_DELETE, wal.pack_delete(file_id))
        entry = self._entries.pop(file_id)
        self._names.pop(name, None)
        self._codecs.pop(name, None)
        for slot in entry.pages.values():
            heapq.heappush(self._free, slot)
        self._maybe_checkpoint()

    def rename_file(self, old: str, new: str) -> None:
        self._check_open()
        entry = self._entry(old)
        if new in self._names:
            raise FileExistsError(f"storage file {new!r} already exists")
        self._maybe_crash("rename")
        self._log(wal.OP_RENAME, wal.pack_rename(entry.file_id, new))
        self._names.pop(old, None)
        entry.name = new
        self._names[new] = entry.file_id
        codec = self._codecs.pop(old, None)
        if codec is not None:
            self._codecs[new] = codec

    def read_page(self, name: str, page_no: int) -> list[Record]:
        self._check_open()
        entry = self._entry(name)
        slot = entry.pages.get(page_no)
        if slot is None:
            raise ValueError(f"page {page_no} of {name!r} was never written")
        payload = self._read_slot(slot, entry.file_id, page_no)
        return self._decode_payload(name, payload)

    def write_page(self, name: str, page_no: int, records: list[Record]) -> None:
        self._check_open()
        entry = self._entry(name)
        if len(records) > entry.capacity:
            raise ValueError(
                f"{len(records)} records exceed page capacity {entry.capacity}"
            )
        payload = self._encode_payload(name, records)
        slot = entry.pages.get(page_no)
        if slot is None:
            slot = self._allocate_slot()
        # WAL first (fsynced inside _log), data second: a crash between
        # the two replays the payload from the log on reopen.
        self._log(wal.OP_WRITE, wal.pack_write(entry.file_id, page_no, slot, payload))
        entry.pages[page_no] = slot
        self._write_slot(slot, entry.file_id, page_no, payload)
        self._maybe_checkpoint()

    def sync(self) -> None:
        """Force full durability: commit the log and fsync the data file."""
        self._check_open()
        self._wal.sync()
        self._data.flush()
        os.fsync(self._data.fileno())

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.checkpoint()
        self._wal.close()
        self._data.close()
