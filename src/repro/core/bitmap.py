"""Dynamic Spatial Bitmaps (section 3.2).

DSB projects every entity of the first data set onto a chosen *bitmap
level* ``l`` — a ``2^l x 2^l`` grid whose ``4^l`` cells map one-to-one
onto bits, indexed by the cell's Hilbert value at level ``l``.  While
the second data set is partitioned, entities whose projection finds no
set bit cannot join anything and are filtered out.

Two projection modes for entities *above* the bitmap level (level
``l_e < l``, i.e. entities bigger than a bitmap cell):

- ``precise`` — enumerate the level-``l`` cells the MBR actually
  overlaps ("determining all the partitions at level l that e overlaps
  and computing their Hilbert values");
- ``fast`` — take the whole Hilbert range of the entity's level-``l_e``
  cell ("extending H with all possible bit strings" — faster, but less
  precise because it covers the full cell, not just the entity).

Entities at or below the bitmap level use a single bit: their Hilbert
value truncated to ``2*l`` bits.
"""

from __future__ import annotations

from repro.curves.base import SpaceFillingCurve
from repro.filtertree.grid import cells_overlapping
from repro.geometry.rect import Rect
from repro.storage.iostats import IOStats

_MODES = ("precise", "fast")


class DynamicSpatialBitmap:
    """A ``4^level``-bit spatial bitmap addressed by Hilbert value."""

    def __init__(
        self,
        level: int,
        curve: SpaceFillingCurve,
        mode: str = "precise",
        stats: IOStats | None = None,
    ) -> None:
        if not 0 <= level <= min(curve.order, 13):
            raise ValueError("bitmap level must be between 0 and min(order, 13)")
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}")
        self.level = level
        self.curve = curve
        self.mode = mode
        self.stats = stats
        self.num_bits = 1 << (2 * level)
        self._bits = bytearray((self.num_bits + 7) // 8)
        # A curve instance at the bitmap's own resolution, for cell keys
        # in precise mode.  Space-filling curves are self-similar, so
        # the level-l key of a cell equals the full-precision key of any
        # interior point truncated to 2*l bits.
        self._cell_curve = type(curve)(order=level) if level >= 1 else None
        self.set_operations = 0
        self.probe_operations = 0
        self.filtered_count = 0

    def pages(self, page_size: int) -> int:
        """Pages needed to store the bitmap: ``2^(2l - p)`` for a page
        of ``2^p`` bits (section 3.2)."""
        page_bits = page_size * 8
        return max(1, -(-self.num_bits // page_bits))

    # -- population (first data set) -----------------------------------

    def set_entity(self, mbr: Rect, hilbert: int, entity_level: int) -> None:
        """Project one entity of the first data set onto the bitmap."""
        self.set_operations += 1
        for lo, hi in self._bit_ranges(mbr, hilbert, entity_level):
            self._set_range(lo, hi)

    # -- probing (second data set) ---------------------------------------

    def admits(self, mbr: Rect, hilbert: int, entity_level: int) -> bool:
        """True when an entity of the second data set may have a joining
        partner (some corresponding bit is set); false means the entity
        can be safely filtered out."""
        self.probe_operations += 1
        for lo, hi in self._bit_ranges(mbr, hilbert, entity_level):
            if self._any_in_range(lo, hi):
                return True
        self.filtered_count += 1
        return False

    # -- internals ---------------------------------------------------------

    def _bit_ranges(
        self, mbr: Rect, hilbert: int, entity_level: int
    ) -> list[tuple[int, int]]:
        """Half-open bit-index ranges covering the entity's projection."""
        self._charge()
        if self.level == 0:
            return [(0, 1)]
        if entity_level >= self.level:
            # At or below the bitmap level: one bit — the Hilbert value
            # truncated to the bitmap resolution.
            bit = hilbert >> (2 * (self.curve.order - self.level))
            return [(bit, bit + 1)]
        if self.mode == "fast":
            # The whole key range of the entity's own (coarser) cell.
            span = 2 * (self.level - entity_level)
            prefix = hilbert >> (2 * (self.curve.order - entity_level))
            return [(prefix << span, (prefix + 1) << span)]
        # Precise: only the bitmap cells the MBR actually overlaps.
        ranges = []
        for cx, cy in cells_overlapping(mbr, self.level):
            self._charge()
            bit = self._cell_curve.key(cx, cy)
            ranges.append((bit, bit + 1))
        return ranges

    def _set_range(self, lo: int, hi: int) -> None:
        for bit in range(lo, hi):
            self._bits[bit >> 3] |= 1 << (bit & 7)

    def _any_in_range(self, lo: int, hi: int) -> bool:
        # Check partial leading byte, whole middle bytes, partial tail.
        bit = lo
        while bit < hi and bit & 7:
            if self._bits[bit >> 3] & (1 << (bit & 7)):
                return True
            bit += 1
        while bit + 8 <= hi:
            if self._bits[bit >> 3]:
                return True
            bit += 8
        while bit < hi:
            if self._bits[bit >> 3] & (1 << (bit & 7)):
                return True
            bit += 1
        return False

    def is_set(self, bit: int) -> bool:
        """Direct single-bit read (used by tests)."""
        if not 0 <= bit < self.num_bits:
            raise IndexError(f"bit {bit} outside [0, {self.num_bits})")
        return bool(self._bits[bit >> 3] & (1 << (bit & 7)))

    def population(self) -> int:
        """Number of set bits."""
        return sum(byte.bit_count() for byte in self._bits)

    def _charge(self) -> None:
        if self.stats is not None:
            self.stats.charge_cpu("bitmap")
