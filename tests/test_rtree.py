"""Tests for the in-memory R-tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.rect import Rect
from repro.rtree.rtree import RTree
from repro.storage.iostats import IOStats


def random_rects(rng, count, max_side=0.2):
    rects = []
    for _ in range(count):
        x = rng.uniform(0, 1)
        y = rng.uniform(0, 1)
        rects.append(
            Rect(x, y, min(1, x + rng.uniform(0, max_side)), min(1, y + rng.uniform(0, max_side)))
        )
    return rects


class TestConstruction:
    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert list(tree.search(Rect(0, 0, 1, 1))) == []

    def test_max_entries_validation(self):
        with pytest.raises(ValueError):
            RTree(max_entries=2)

    def test_min_entries_validation(self):
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=5)

    def test_insert_and_count(self):
        tree = RTree(max_entries=4)
        for i in range(100):
            tree.insert(Rect(i / 200, i / 200, i / 200 + 0.01, i / 200 + 0.01), i)
        assert len(tree) == 100

    def test_height_grows(self):
        tree = RTree(max_entries=4)
        assert tree.height == 1
        rng = random.Random(1)
        for i, rect in enumerate(random_rects(rng, 100)):
            tree.insert(rect, i)
        assert tree.height >= 3


class TestSearch:
    def test_point_query(self):
        tree = RTree(max_entries=4)
        tree.insert(Rect(0.2, 0.2, 0.4, 0.4), "hit")
        tree.insert(Rect(0.6, 0.6, 0.8, 0.8), "miss")
        assert list(tree.search(Rect.point(0.3, 0.3))) == ["hit"]

    def test_search_matches_linear_scan(self):
        rng = random.Random(2)
        rects = random_rects(rng, 400)
        tree = RTree(max_entries=8)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        for window in random_rects(rng, 25, max_side=0.4):
            expected = {i for i, r in enumerate(rects) if r.intersects(window)}
            assert set(tree.search(window)) == expected

    def test_all_entries(self):
        rng = random.Random(3)
        rects = random_rects(rng, 120)
        tree = RTree(max_entries=6)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        assert {payload for _, payload in tree.all_entries()} == set(range(120))

    def test_charges_rtree_cpu(self):
        stats = IOStats()
        tree = RTree(max_entries=4, stats=stats)
        rng = random.Random(4)
        for i, rect in enumerate(random_rects(rng, 60)):
            tree.insert(rect, i)
        before = stats.total.cpu_ops.get("rtree", 0)
        list(tree.search(Rect(0, 0, 1, 1)))
        assert stats.total.cpu_ops["rtree"] > before


class TestInvariants:
    def test_invariants_after_inserts(self):
        tree = RTree(max_entries=5)
        rng = random.Random(5)
        for i, rect in enumerate(random_rects(rng, 300)):
            tree.insert(rect, i)
            if i % 50 == 0:
                tree.check_invariants()
        tree.check_invariants()

    def test_duplicate_rects_allowed(self):
        tree = RTree(max_entries=4)
        for i in range(50):
            tree.insert(Rect(0.5, 0.5, 0.6, 0.6), i)
        tree.check_invariants()
        assert len(set(tree.search(Rect(0.5, 0.5, 0.6, 0.6)))) == 50

    @given(st.integers(0, 2**32 - 1), st.integers(10, 150))
    @settings(max_examples=20, deadline=None)
    def test_property_search_correct(self, seed, count):
        rng = random.Random(seed)
        rects = random_rects(rng, count)
        tree = RTree(max_entries=4)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        tree.check_invariants()
        window = random_rects(rng, 1, max_side=0.5)[0]
        expected = {i for i, r in enumerate(rects) if r.intersects(window)}
        assert set(tree.search(window)) == expected


class TestBulkLoad:
    def test_bulk_load_search_correct(self):
        rng = random.Random(6)
        rects = random_rects(rng, 500)
        tree = RTree.bulk_load([(r, i) for i, r in enumerate(rects)], max_entries=16)
        assert len(tree) == 500
        for window in random_rects(rng, 20, max_side=0.3):
            expected = {i for i, r in enumerate(rects) if r.intersects(window)}
            assert set(tree.search(window)) == expected

    def test_bulk_load_empty(self):
        tree = RTree.bulk_load([])
        assert len(tree) == 0

    def test_bulk_load_is_shallower_than_insertion(self):
        rng = random.Random(7)
        rects = random_rects(rng, 600)
        bulk = RTree.bulk_load([(r, i) for i, r in enumerate(rects)], max_entries=8)
        incremental = RTree(max_entries=8)
        for i, rect in enumerate(rects):
            incremental.insert(rect, i)
        assert bulk.height <= incremental.height
