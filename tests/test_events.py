"""Tests for the structured event log (repro.obs.events)."""

from __future__ import annotations

import json

import pytest

from repro.obs import NULL_OBS, Observability
from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EVENT_TYPES,
    HEARTBEAT_INTERVAL_S,
    NULL_EVENTS,
    BufferedEventSink,
    EventLog,
    EventSink,
    events_from_jsonl,
    progress_emitter,
)


class TestSchema:
    def test_events_carry_version_type_and_timestamp(self):
        log = EventLog()
        log.emit("shard_dispatched", shard_id="cell-0")
        (event,) = log.to_dicts()
        assert event["v"] == EVENT_SCHEMA_VERSION
        assert event["type"] == "shard_dispatched"
        assert event["ts"] > 0
        assert event["shard_id"] == "cell-0"

    def test_unknown_type_raises(self):
        log = EventLog()
        with pytest.raises(ValueError, match="unknown event type"):
            log.emit("shard_exploded")
        assert len(log) == 0

    def test_every_declared_type_is_accepted(self):
        log = EventLog()
        for type_ in sorted(EVENT_TYPES):
            log.emit(type_)
        assert len(log) == len(EVENT_TYPES)

    def test_default_fields_ride_every_event(self):
        sink = BufferedEventSink(shard_id="residual-A")
        sink.emit("shard_progress", phase="join", done=1, total=2)
        (event,) = sink.to_dicts()
        assert event["shard_id"] == "residual-A"

    def test_explicit_field_beats_default(self):
        sink = BufferedEventSink(shard_id="cell-1")
        sink.emit("shard_progress", shard_id="cell-9")
        assert sink.to_dicts()[0]["shard_id"] == "cell-9"


class TestNullSink:
    def test_disabled_and_inert(self):
        assert not NULL_EVENTS.enabled
        NULL_EVENTS.emit("shard_progress", done=1)  # no-op, no error
        NULL_EVENTS.heartbeat("join")

    def test_null_sink_accepts_even_unknown_types(self):
        # The null path must cost nothing — no validation either.
        EventSink().emit("anything")

    def test_null_obs_has_null_events(self):
        assert NULL_OBS.events is NULL_EVENTS
        assert not NULL_OBS.enabled

    def test_observability_with_events_is_enabled(self):
        obs = Observability(events=EventLog())
        assert obs.enabled
        assert obs.events.enabled


class TestRoundTrip:
    def test_jsonl_round_trip(self):
        log = EventLog()
        log.emit("run_started", algorithm="s3j", workers=2)
        log.emit("shard_completed", shard_id="cell-0", wall_s=0.5)
        parsed = events_from_jsonl(log.to_jsonl())
        assert parsed == log.to_dicts()

    def test_jsonl_rejects_out_of_schema(self):
        with pytest.raises(ValueError, match="unknown event type"):
            events_from_jsonl('{"type": "bogus", "ts": 1.0, "v": 1}\n')

    def test_stream_file_follows_emission(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(stream_path=str(path)) as log:
            log.emit("run_started", algorithm="s3j")
            # Visible before close: the stream flushes per event.
            assert len(path.read_text().splitlines()) == 1
            log.emit("run_completed", pairs=7)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["pairs"] == 7

    def test_close_is_idempotent(self, tmp_path):
        log = EventLog(stream_path=str(tmp_path / "e.jsonl"))
        log.close()
        log.close()


class TestExtend:
    def test_worker_buffer_folds_into_parent_log(self):
        worker = BufferedEventSink(shard_id="cell-2")
        worker.emit("shard_progress", phase="sort", done=1, total=3)
        parent = EventLog()
        parent.extend(worker.to_dicts())
        (event,) = parent.to_dicts()
        assert event["shard_id"] == "cell-2"
        assert event["type"] == "shard_progress"

    def test_extend_preserves_worker_timestamps(self):
        worker = BufferedEventSink(shard_id="cell-0")
        worker.emit("shard_heartbeat", phase="start")
        original_ts = worker.to_dicts()[0]["ts"]
        parent = EventLog()
        parent.extend(worker.to_dicts())
        assert parent.to_dicts()[0]["ts"] == original_ts

    def test_extend_revalidates(self):
        parent = EventLog()
        with pytest.raises(ValueError, match="unknown event type"):
            parent.extend([{"type": "smuggled", "ts": 1.0, "v": 1}])

    def test_extend_streams_to_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        worker = BufferedEventSink(shard_id="cell-1")
        worker.emit("shard_completed", wall_s=0.1)
        with EventLog(stream_path=str(path)) as log:
            log.extend(worker.to_dicts())
        assert json.loads(path.read_text())["shard_id"] == "cell-1"


class TestHeartbeat:
    def test_heartbeat_is_rate_limited(self):
        log = EventLog()
        log.emit("run_started")
        for _ in range(100):
            log.heartbeat("join")  # all inside the quiet interval
        assert len(log) == 1

    def test_heartbeat_fires_after_quiet_interval(self, monkeypatch):
        log = EventLog()
        log.emit("run_started")
        import repro.obs.events as events_mod

        real_time = events_mod.time.time()
        monkeypatch.setattr(
            events_mod.time,
            "time",
            lambda: real_time + HEARTBEAT_INTERVAL_S + 0.01,
        )
        log.heartbeat("join")
        assert len(log) == 2
        assert log.to_dicts()[1]["type"] == "shard_heartbeat"


class TestProgressEmitter:
    def test_disabled_sink_returns_none(self):
        assert progress_emitter(NULL_EVENTS, "join", total=10) is None

    def test_emits_every_nth_and_always_the_last(self):
        log = EventLog()
        on_progress = progress_emitter(log, "join", total=10, every=4)
        for done in range(1, 11):
            on_progress(done, f"step-{done}")
        progress = [e for e in log.to_dicts() if e["type"] == "shard_progress"]
        assert [e["done"] for e in progress] == [4, 8, 10]
        assert progress[-1]["detail"] == "step-10"
        assert all(e["total"] == 10 for e in progress)
