"""A CFD-vertex-like point data set (the paper's CFD stand-in).

The original data set describes a 2-D cross section of a Boeing 737
wing with flaps out in landing configuration: 208,688 mesh nodes,
"dense in areas of great change ... and sparse in areas of little
change", with a large central cluster so skewed that SHJ's sampling
degenerates and PBSM needs heavy repartitioning (section 5.2.1).

The stand-in reproduces the structure of such a mesh: points
concentrated along an airfoil outline (plus a deployed flap outline
behind it), with wall-normal offsets following a boundary-layer-like
power law — extremely dense within a hair of the surfaces, thinning
rapidly into the far field.  See DESIGN.md's substitution table.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.entity import Entity
from repro.geometry.shapes import Point
from repro.join.dataset import SpatialDataset


def cfd_points(
    count: int,
    chord: float = 0.06,
    thickness: float = 0.008,
    wall_offset: float = 2e-5,
    far_field: float = 0.45,
    decay: float = 5.0,
    far_fraction: float = 0.02,
    seed: int = 0,
    name: str = "CFD",
) -> SpatialDataset:
    """``count`` mesh-node-like points around an airfoil with flap.

    Each near-field point sits at a surface point of the main airfoil
    (80%) or the deployed flap (20%), pushed along the surface normal
    by ``wall_offset * (far_field / wall_offset) ** u**decay`` — a
    boundary-layer profile putting most nodes within a hair of the
    surfaces.  ``far_fraction`` of the points are uniform background.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if not 0.0 < wall_offset < far_field <= 0.5:
        raise ValueError("need 0 < wall_offset < far_field <= 0.5")
    if not 0.0 <= far_fraction <= 1.0:
        raise ValueError("far_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    near = count - int(count * far_fraction)

    on_flap = rng.random(near) < 0.2
    # Chordwise parameter, denser at the leading/trailing edges where
    # the solution changes fastest.
    t = rng.beta(0.6, 0.6, size=near)
    upper = np.where(rng.random(near) < 0.5, 1.0, -1.0)
    sx, sy, nx, ny = _surface(t, upper, on_flap, chord, thickness)
    offset = wall_offset * (far_field / wall_offset) ** (rng.random(near) ** decay)
    xs = sx + offset * nx
    ys = sy + offset * ny

    far = count - near
    xs = np.concatenate([xs, rng.random(far)])
    ys = np.concatenate([ys, rng.random(far)])
    xs = np.clip(xs, 0.0, 1.0)
    ys = np.clip(ys, 0.0, 1.0)

    entities = [
        Entity.from_geometry(eid, Point(float(x), float(y)))
        for eid, (x, y) in enumerate(zip(xs, ys))
    ]
    return SpatialDataset(
        name,
        entities,
        description=(
            f"{count} mesh-node-like points around an airfoil-with-flap "
            "cross section"
        ),
    )


def _surface(
    t: np.ndarray,
    upper: np.ndarray,
    on_flap: np.ndarray,
    chord: float,
    thickness: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Surface point and outward normal at chordwise parameter ``t`` on
    the chosen surface (``upper`` is +1/-1) of the main airfoil or
    (where ``on_flap``) of the deployed flap."""
    scale = np.where(on_flap, 0.5, 1.0)
    dx = np.where(on_flap, 0.55 * chord, chord)
    x = np.where(
        on_flap,
        0.5 + 0.45 * chord + 0.55 * chord * t,  # flap trails the main element
        0.5 - 0.6 * chord + chord * t,
    )
    # A rounded-nose, sharp-tail half-thickness profile.
    half = thickness * scale * (1.2 * np.sqrt(t + 1e-9) * (1.0 - t) + 0.05)
    # Flap deflected downward behind the main element.
    camber = np.where(on_flap, 0.5 - 0.8 * thickness * (1.0 + 2.0 * t), 0.5)
    y = camber + upper * half
    # Outward normal from the slope of the half-thickness curve.
    slope = thickness * scale * (
        0.6 / np.sqrt(t + 1e-2) - 1.8 * np.sqrt(t + 1e-9)
    )
    norm = np.hypot(dx, slope)
    nx = -upper * slope / norm
    ny = upper * dx / norm
    return x, y, nx, ny
