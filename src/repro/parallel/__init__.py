"""repro.parallel — Hilbert-range sharded parallel join execution.

Two selectable planners decompose a join into independent sub-joins
over the level-``k`` Filter-Tree grid (``4^k`` Hilbert-contiguous
tiles):

- ``two-layer`` (default) — the class-based partitioning of
  Tsitsigkos et al. (arXiv 2307.09256): every entity is present in
  each tile its expanded MBR overlaps, classed A/B/C/D by where the
  MBR starts, and each tile runs a fixed set of disjoint class-pair
  mini-joins — every result pair is found exactly once in its
  reference tile and no shard ever joins "everything" (DESIGN.md
  section 14).
- ``residual`` (legacy) — single-assignment routing: a level-``l >= k``
  entity goes to its level-``k`` ancestor cell, larger entities to one
  residual shard whose cross joins complete the disjoint union
  (DESIGN.md section 9).  Kept selectable so planner-to-planner parity
  is itself a verification gate.

- :mod:`repro.parallel.planner` — routes entities and plans the
  sub-joins (:class:`ShardPlan` / :class:`ShardTask` /
  :class:`MiniJoin`).
- :mod:`repro.parallel.executor` — runs the sub-joins in worker
  processes (or serially in-process) and deterministically merges pair
  sets, ledgers, and observability output.
"""

from __future__ import annotations

from repro.parallel.planner import (
    DEFAULT_PLANNER,
    PLANNERS,
    MiniJoin,
    ShardPlan,
    ShardTask,
    default_shard_level,
    plan_join,
    plan_shards,
    plan_two_layer,
)
from repro.parallel.executor import parallel_spatial_join

__all__ = [
    "DEFAULT_PLANNER",
    "MiniJoin",
    "PLANNERS",
    "ShardPlan",
    "ShardTask",
    "default_shard_level",
    "parallel_spatial_join",
    "plan_join",
    "plan_shards",
    "plan_two_layer",
]
