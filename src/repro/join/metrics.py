"""Per-phase join metrics (the paper's Table 2 and Table 4 quantities).

Each algorithm accounts its work into named phases:

=========  =========================================================
algorithm  phases (Table 2)
=========  =========================================================
S3J        partition, sort, join
PBSM       partition, join, sort
SHJ        partition, join
=========  =========================================================

and reports replication factors ``r_A``/``r_B`` (equation 9: data set
size after replication and filtering over original size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.storage.costs import CostModel
from repro.storage.iostats import PhaseStats


@dataclass
class JoinMetrics:
    """Everything measured about one join execution."""

    algorithm: str
    phase_names: tuple[str, ...]
    phases: dict[str, PhaseStats]
    cost_model: CostModel
    replication_a: float = 1.0
    replication_b: float = 1.0
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def all_phase_names(self) -> tuple[str, ...]:
        """The declared phase order, followed by any extra phases that
        were recorded in :attr:`phases` (sorted).

        Totals iterate this, not :attr:`phase_names`, so an
        instrumented sub-phase an algorithm opened beyond its declared
        Table 2 phases can never silently drop I/O from the totals."""
        extras = sorted(set(self.phases) - set(self.phase_names))
        return self.phase_names + tuple(extras)

    def phase_time(self, name: str) -> float:
        """Simulated seconds spent in one phase (0 for absent phases)."""
        stats = self.phases.get(name)
        if stats is None:
            return 0.0
        return self.cost_model.response_time(stats)

    def phase_ios(self, name: str) -> int:
        """Physical page transfers in one phase (0 for absent phases)."""
        stats = self.phases.get(name)
        return 0 if stats is None else stats.total_ios

    @property
    def response_time(self) -> float:
        """Total simulated response time (sum over the phases)."""
        return sum(self.phase_time(name) for name in self.all_phase_names)

    @property
    def total_ios(self) -> int:
        """Total physical page reads + writes across all phases."""
        return sum(self.phase_ios(name) for name in self.all_phase_names)

    @property
    def total_reads(self) -> int:
        return sum(stats.page_reads for stats in self.phases.values())

    @property
    def total_writes(self) -> int:
        return sum(stats.page_writes for stats in self.phases.values())

    @property
    def replication_total(self) -> float:
        """The paper's Table 4 column ``r_A + r_B``."""
        return self.replication_a + self.replication_b

    def breakdown(self) -> dict[str, float]:
        """Phase -> simulated seconds, in the algorithm's phase order
        (plus any extra recorded phases)."""
        return {name: self.phase_time(name) for name in self.all_phase_names}

    def describe(self) -> str:
        """A compact human-readable summary line."""
        phases = ", ".join(
            f"{name}={seconds:.2f}s" for name, seconds in self.breakdown().items()
        )
        return (
            f"{self.algorithm}: total={self.response_time:.2f}s "
            f"ios={self.total_ios} r_A={self.replication_a:.2f} "
            f"r_B={self.replication_b:.2f} [{phases}]"
        )

    # -- serialization (run reports) ------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form; round-trips through :meth:`from_dict`."""
        return {
            "algorithm": self.algorithm,
            "phase_names": list(self.phase_names),
            "phases": {name: stats.to_dict() for name, stats in self.phases.items()},
            "cost_model": self.cost_model.to_dict(),
            "replication_a": self.replication_a,
            "replication_b": self.replication_b,
            "details": self.details,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> JoinMetrics:
        return cls(
            algorithm=data["algorithm"],
            phase_names=tuple(data["phase_names"]),
            phases={
                str(name): PhaseStats.from_dict(stats)
                for name, stats in data["phases"].items()
            },
            cost_model=CostModel.from_dict(data["cost_model"]),
            replication_a=float(data["replication_a"]),
            replication_b=float(data["replication_b"]),
            details=dict(data["details"]),
        )
