"""Replication-fraction analysis (equation 11 / figure 7).

For uniformly distributed ``d x d`` squares and a regular partitioning
of the unit square into tiles of side ``2^-j``, the fraction of objects
falling wholly inside tiles is ``1 - d 2^(j+1) + d^2 2^(2j)`` (equation
11), so the fraction of *replicated* objects is::

    replicated(x) = 2x - x^2,    x = d * 2^j

which rises toward 1 as ``x -> 1`` — the paper's figure 7 curve.
"""

from __future__ import annotations


def inside_fraction(d_times_tiles: float) -> float:
    """Equation 11: fraction of objects wholly inside one tile, as a
    function of ``x = d * 2^j`` (object side times tiles per dimension)."""
    x = _validated(d_times_tiles)
    return (1.0 - x) * (1.0 - x)


def replicated_fraction(d_times_tiles: float) -> float:
    """Figure 7: fraction of objects crossing a tile boundary."""
    return 1.0 - inside_fraction(d_times_tiles)


def _validated(x: float) -> float:
    if not 0.0 <= x <= 1.0:
        raise ValueError(
            "d * 2^j must be in [0, 1] (object side at most one tile side)"
        )
    return x
