"""repro.parallel — Hilbert-range sharded parallel join execution.

The paper's size-separation invariant (a level-``l`` entity lives in
exactly one level-``l`` cell, and cells across levels are nested or
disjoint) makes the spatial join shardable by Hilbert key range with
**no replication**: route every entity whose level is at least the
shard level ``k`` to its level-``k`` ancestor cell (one of ``4^k``
contiguous key ranges), and the few large entities above the shard
level to a single *residual* shard.  Disjoint cells cannot contribute
result pairs, so the full join is exactly the union of the per-cell
sub-joins plus the residual cross joins (see DESIGN.md section 9).

- :mod:`repro.parallel.planner` — routes entities and plans the
  sub-joins (:class:`ShardPlan` / :class:`ShardTask`).
- :mod:`repro.parallel.executor` — runs the sub-joins in worker
  processes (or serially in-process) and deterministically merges pair
  sets, ledgers, and observability output.
"""

from __future__ import annotations

from repro.parallel.planner import ShardPlan, ShardTask, default_shard_level, plan_shards
from repro.parallel.executor import parallel_spatial_join

__all__ = [
    "ShardPlan",
    "ShardTask",
    "default_shard_level",
    "parallel_spatial_join",
    "plan_shards",
]
