"""Tests for the BKS93 R-tree spatial join."""

import random

import pytest

from repro.geometry.rect import Rect
from repro.rtree.join import rtree_join
from repro.rtree.rtree import RTree
from repro.storage.iostats import IOStats


def random_rects(rng, count, max_side=0.15):
    rects = []
    for _ in range(count):
        x = rng.uniform(0, 1)
        y = rng.uniform(0, 1)
        rects.append(
            Rect(
                x,
                y,
                min(1, x + rng.uniform(0, max_side)),
                min(1, y + rng.uniform(0, max_side)),
            )
        )
    return rects


def build(rects, max_entries=8, bulk=False):
    if bulk:
        return RTree.bulk_load(list(enumerate_pairs(rects)), max_entries=max_entries)
    tree = RTree(max_entries=max_entries)
    for i, rect in enumerate(rects):
        tree.insert(rect, i)
    return tree


def enumerate_pairs(rects):
    for i, rect in enumerate(rects):
        yield rect, i


def brute(rects_a, rects_b):
    return {
        (i, j)
        for i, a in enumerate(rects_a)
        for j, b in enumerate(rects_b)
        if a.intersects(b)
    }


class TestRTreeJoin:
    def test_empty_trees(self):
        assert list(rtree_join(RTree(), RTree())) == []
        tree = build(random_rects(random.Random(0), 10))
        assert list(rtree_join(tree, RTree())) == []
        assert list(rtree_join(RTree(), tree)) == []

    def test_matches_brute_force(self):
        rng = random.Random(1)
        rects_a = random_rects(rng, 250)
        rects_b = random_rects(rng, 250)
        pairs = set(rtree_join(build(rects_a), build(rects_b)))
        assert pairs == brute(rects_a, rects_b)

    def test_no_duplicates(self):
        rng = random.Random(2)
        rects_a = random_rects(rng, 200)
        rects_b = random_rects(rng, 200)
        reported = list(rtree_join(build(rects_a), build(rects_b)))
        assert len(reported) == len(set(reported))

    def test_different_tree_heights(self):
        rng = random.Random(3)
        rects_a = random_rects(rng, 600)   # taller tree
        rects_b = random_rects(rng, 20)    # shallow tree
        tree_a = build(rects_a, max_entries=4)
        tree_b = build(rects_b, max_entries=16)
        assert tree_a.height > tree_b.height
        pairs = set(rtree_join(tree_a, tree_b))
        assert pairs == brute(rects_a, rects_b)
        # Symmetric orientation also works.
        flipped = {(b, a) for a, b in rtree_join(tree_b, tree_a)}
        assert flipped == pairs

    def test_bulk_loaded_trees(self):
        rng = random.Random(4)
        rects_a = random_rects(rng, 300)
        rects_b = random_rects(rng, 300)
        pairs = set(
            rtree_join(build(rects_a, bulk=True), build(rects_b, bulk=True))
        )
        assert pairs == brute(rects_a, rects_b)

    def test_charges_cpu(self):
        rng = random.Random(5)
        stats = IOStats()
        tree_a = build(random_rects(rng, 100))
        tree_b = build(random_rects(rng, 100))
        list(rtree_join(tree_a, tree_b, stats=stats))
        assert stats.total.cpu_ops.get("rtree", 0) > 0
        assert stats.total.cpu_ops.get("mbr_test", 0) > 0

    def test_space_restriction_prunes(self):
        """Node pairs in disjoint regions must never be visited: the
        traversal cost stays far below the all-node-pairs bound."""
        rng = random.Random(6)
        stats = IOStats()
        # Two clusters far apart, plus a thin joining band.
        rects_a = [
            Rect(x, y, x + 0.01, y + 0.01)
            for x, y in (
                (rng.uniform(0.0, 0.2), rng.uniform(0.0, 0.2)) for _ in range(300)
            )
        ]
        rects_b = [
            Rect(x, y, x + 0.01, y + 0.01)
            for x, y in (
                (rng.uniform(0.7, 0.9), rng.uniform(0.7, 0.9)) for _ in range(300)
            )
        ]
        tree_a = build(rects_a)
        tree_b = build(rects_b)
        assert list(rtree_join(tree_a, tree_b, stats=stats)) == []
        # Only the two roots should have been compared (plus their
        # entry restrictions): far less than 300 * 300.
        assert stats.total.cpu_ops.get("mbr_test", 0) < 1000

    @pytest.mark.parametrize("seed", [7, 8, 9])
    def test_agreement_with_s3j(self, seed):
        """The indexed R-tree join and S3J agree on identical inputs."""
        from repro.geometry.entity import Entity
        from repro.join.api import spatial_join
        from repro.join.dataset import SpatialDataset

        rng = random.Random(seed)
        rects_a = random_rects(rng, 150)
        rects_b = random_rects(rng, 150)
        a = SpatialDataset(
            "A", [Entity.from_geometry(i, r) for i, r in enumerate(rects_a)]
        )
        b = SpatialDataset(
            "B", [Entity.from_geometry(i, r) for i, r in enumerate(rects_b)]
        )
        expected = spatial_join(a, b, algorithm="s3j").pairs
        pairs = set(rtree_join(build(rects_a), build(rects_b)))
        assert pairs == expected
