"""Pair-set diffing and counterexample minimization.

When an executor's pair set diverges from the oracle, the raw diff on a
few-hundred-entity workload is unactionable.  The minimizer shrinks the
failing input with greedy delta debugging (ddmin over each data set,
alternating sides until a fixed point), re-checking executor-vs-oracle
agreement on every candidate subset — the result is typically a
handful of entities whose exact coordinates pin the bug.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.geometry.entity import Entity
from repro.join.result import Pair
from repro.verify.cases import VerifyCase
from repro.verify.oracle import oracle_for_case

PairRunner = Callable[[VerifyCase], frozenset[Pair]]


@dataclass(frozen=True)
class PairDiff:
    """Expected-vs-got pair sets."""

    missing: frozenset[Pair]  # in the oracle, not produced
    extra: frozenset[Pair]  # produced, not in the oracle

    @property
    def empty(self) -> bool:
        return not self.missing and not self.extra

    def describe(self, limit: int = 5) -> str:
        parts = []
        for label, pairs in (("missing", self.missing), ("extra", self.extra)):
            if pairs:
                shown = ", ".join(map(str, sorted(pairs)[:limit]))
                suffix = ", ..." if len(pairs) > limit else ""
                parts.append(f"{len(pairs)} {label} [{shown}{suffix}]")
        return "; ".join(parts) if parts else "no differences"


def diff_pairs(
    expected: frozenset[Pair], got: frozenset[Pair]
) -> PairDiff:
    """Diff an executor's pair set against the expected one."""
    return PairDiff(
        missing=frozenset(expected - got), extra=frozenset(got - expected)
    )


@dataclass
class Counterexample:
    """A minimized failing input."""

    entities_a: list[Entity]
    entities_b: list[Entity]
    self_join: bool
    diff: PairDiff
    runs_used: int = 0

    def describe(self) -> str:
        def fmt(entities: list[Entity]) -> str:
            return "; ".join(
                f"#{e.eid} [{e.mbr.xlo:.6g},{e.mbr.xhi:.6g}]x"
                f"[{e.mbr.ylo:.6g},{e.mbr.yhi:.6g}]"
                for e in entities
            )

        lines = [
            f"minimized to {len(self.entities_a)}"
            + ("" if self.self_join else f"x{len(self.entities_b)}")
            + f" entities ({self.runs_used} shrink runs): {self.diff.describe()}",
            f"  A: {fmt(self.entities_a)}",
        ]
        if not self.self_join:
            lines.append(f"  B: {fmt(self.entities_b)}")
        return "\n".join(lines)


@dataclass
class Divergence:
    """One executor producing the wrong pair set on one case."""

    case: str
    transform: str
    executor: str
    expected: int
    got: int
    diff: PairDiff
    counterexample: Counterexample | None = field(default=None)

    def describe(self) -> str:
        text = (
            f"{self.executor} on {self.case} ({self.transform}): "
            f"expected {self.expected} pairs, got {self.got} — "
            f"{self.diff.describe()}"
        )
        if self.counterexample is not None:
            text += "\n" + self.counterexample.describe()
        return text


def _ddmin(
    items: list[Entity],
    still_fails: Callable[[list[Entity]], bool],
    budget: list[int],
) -> list[Entity]:
    """Greedy delta debugging on one entity list."""
    granularity = 2
    while len(items) >= 2 and budget[0] > 0:
        chunk = math.ceil(len(items) / granularity)
        reduced = False
        for start in range(0, len(items), chunk):
            candidate = items[:start] + items[start + chunk :]
            if not candidate:
                continue
            budget[0] -= 1
            if still_fails(candidate):
                items = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
            if budget[0] <= 0:
                break
        if not reduced:
            if chunk == 1:
                break
            granularity = min(granularity * 2, len(items))
    return items


def minimize_counterexample(
    case: VerifyCase,
    run_pairs: PairRunner,
    max_runs: int = 80,
) -> Counterexample:
    """Shrink a diverging case to a minimal failing input.

    ``run_pairs`` executes the diverging executor on a (sub-)case and
    returns its pair set; a subset "fails" when that pair set still
    differs from the oracle on the same subset.  At most ``max_runs``
    executor runs are spent shrinking.
    """
    budget = [max_runs]

    def diff_of(entities_a: list[Entity], entities_b: list[Entity]) -> PairDiff:
        sub = case.with_entities(entities_a, entities_b)
        return diff_pairs(oracle_for_case(sub), run_pairs(sub))

    entities_a = list(case.dataset_a)
    entities_b = entities_a if case.self_join else list(case.dataset_b)

    if case.self_join:
        entities_a = _ddmin(
            entities_a,
            lambda sub: not diff_of(sub, sub).empty,
            budget,
        )
        entities_b = entities_a
    else:
        # Alternate sides until neither shrinks further (or the budget
        # runs out); shrinking one side often unlocks the other.
        while budget[0] > 0:
            before = (len(entities_a), len(entities_b))
            entities_a = _ddmin(
                entities_a,
                lambda sub: not diff_of(sub, entities_b).empty,
                budget,
            )
            entities_b = _ddmin(
                entities_b,
                lambda sub: not diff_of(entities_a, sub).empty,
                budget,
            )
            if (len(entities_a), len(entities_b)) == before:
                break

    return Counterexample(
        entities_a=entities_a,
        entities_b=entities_b,
        self_join=case.self_join,
        diff=diff_of(entities_a, entities_b),
        runs_used=max_runs - budget[0],
    )
