"""The structured event log: typed, schema-versioned execution events.

Where spans (:mod:`repro.obs.tracer`) describe *how long* each nested
region took after the fact, events describe *what happened when* while
a run is still in flight: shards being dispatched, making progress
through their phases, being retried after a timeout or crash, and
completing.  The stream is the input to the straggler analytics
(:mod:`repro.obs.straggler`) and the shard Gantt lanes of
``repro report``.

Design (DESIGN.md section 13):

- **Typed** — every event has a ``type`` drawn from :data:`EVENT_TYPES`;
  emitting an unknown type raises immediately (a misspelled hook is a
  bug, not a new event kind).
- **Schema-versioned** — every event carries ``v`` =
  :data:`EVENT_SCHEMA_VERSION` plus ``ts``, a Unix wall-clock timestamp.
  Wall time is used (not a per-process monotonic epoch) so events from
  worker processes land on the same timeline as the parent's without
  clock translation.
- **Multiprocessing-safe by construction** — the parent holds an
  :class:`EventLog`; each worker process buffers its own events in a
  :class:`BufferedEventSink` that ships back with the shard result and
  is folded into the parent log (:meth:`EventLog.extend`).  No queues,
  no shared state, no cross-process locking.
- **Streaming** — an :class:`EventLog` opened with a ``stream_path``
  appends each event to a JSONL file the moment it is emitted, so
  ``tail -f`` shows shard lifecycle live.  Worker-side progress events
  arrive when their shard completes (they ride the result payload);
  consumers sort by ``ts`` to reconstruct the true timeline.
- **Zero-cost when disabled** — the default sink everywhere is
  :data:`NULL_EVENTS`; hot loops additionally guard on
  ``events.enabled`` so an un-observed run never builds an event dict.

Events never touch the simulated I/O ledger or the metrics registry:
the parity suite proves a run's ledger is byte-identical with the event
layer on or off.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Callable, Iterable, TextIO

EVENT_SCHEMA_VERSION = 1

EVENT_TYPES = frozenset(
    {
        "run_started",
        "run_completed",
        "shard_dispatched",
        "shard_heartbeat",
        "shard_progress",
        "shard_retry",
        "shard_completed",
        "shard_timed_out",
        "shard_failed",
        "service_started",
        "service_stopped",
        "query_started",
        "query_completed",
        "query_rejected",
        "query_failed",
        "index_updated",
        "compaction_started",
        "compaction_completed",
        "breaker_opened",
        "breaker_closed",
    }
)
"""Every event type the schema admits.  ``shard_*`` events describe the
parallel executor's shard lifecycle; ``run_*`` bracket a whole join;
``service_*``/``query_*``/``index_updated``/``compaction_*``/
``breaker_*`` describe the long-lived join service (DESIGN.md
section 15).  Analytics ignore types they do not model, so service
streams flow through the same log, report, and renderer unchanged."""

HEARTBEAT_INTERVAL_S = 0.25
"""Minimum spacing of ``shard_heartbeat`` events: :meth:`EventSink.
heartbeat` may be called once per inner-loop iteration and emits only
when this much wall time passed since the sink's last event."""


class EventSink:
    """The do-nothing base sink: ``emit``/``heartbeat`` are no-ops.

    Hot paths hold a sink reference and guard on :attr:`enabled`, so an
    un-observed run pays one attribute test per hook site and never
    allocates an event.
    """

    enabled = False

    def emit(self, type: str, **fields: Any) -> None:
        """Record one event (no-op here)."""

    def heartbeat(self, phase: str) -> None:
        """Record a liveness beat, rate-limited (no-op here)."""


NULL_EVENTS = EventSink()
"""Shared no-op sink (safe: it never stores anything)."""


class _RecordingSink(EventSink):
    """Common machinery of the enabled sinks: validation, timestamps,
    default fields, heartbeat rate-limiting, and a lock (sinks may be
    shared across threads; processes never share one)."""

    enabled = True

    def __init__(self, **defaults: Any) -> None:
        self.events: list[dict[str, Any]] = []
        self._defaults = defaults
        self._lock = threading.Lock()
        self._last_ts = 0.0

    def emit(self, type: str, **fields: Any) -> None:
        if type not in EVENT_TYPES:
            raise ValueError(
                f"unknown event type {type!r}; the schema admits "
                f"{sorted(EVENT_TYPES)}"
            )
        event = {
            "v": EVENT_SCHEMA_VERSION,
            "type": type,
            "ts": time.time(),
            **self._defaults,
            **fields,
        }
        with self._lock:
            self.events.append(event)
            self._last_ts = event["ts"]
            self._record(event)

    def heartbeat(self, phase: str) -> None:
        """Emit a ``shard_heartbeat`` if the sink has been quiet for
        :data:`HEARTBEAT_INTERVAL_S` — cheap enough to call every
        iteration of a long inner loop."""
        if time.time() - self._last_ts >= HEARTBEAT_INTERVAL_S:
            self.emit("shard_heartbeat", phase=phase)

    def _record(self, event: dict[str, Any]) -> None:
        """Hook for subclasses (called under the lock)."""

    def to_dicts(self) -> list[dict[str, Any]]:
        """The recorded events as plain dicts (shared, do not mutate)."""
        return list(self.events)

    def to_jsonl(self) -> str:
        """One JSON object per event, in emission order."""
        lines = [json.dumps(event, sort_keys=True) for event in self.events]
        return "\n".join(lines) + ("\n" if lines else "")

    def __len__(self) -> int:
        return len(self.events)


class BufferedEventSink(_RecordingSink):
    """The worker-process sink: buffers events for shipment.

    Constructed inside a shard worker with the shard's identity as
    default fields (``BufferedEventSink(shard_id="cell-3")``), filled by
    the algorithm's progress hooks, and returned with the shard result;
    the parent folds the buffer into its :class:`EventLog`.  Buffering
    is what makes the event layer multiprocessing-safe: nothing is
    shared between processes, ever.
    """


class EventLog(_RecordingSink):
    """The parent-side event log, optionally streaming JSONL live.

    ``stream_path`` appends each event to a file as it is emitted (line
    buffered and flushed, so ``tail -f`` follows the run).  Events
    folded in from workers (:meth:`extend`) are appended in arrival
    order — their ``ts`` values predate the fold; sort by ``ts`` to
    reconstruct the timeline.
    """

    def __init__(self, stream_path: str | None = None, **defaults: Any) -> None:
        super().__init__(**defaults)
        self.stream_path = stream_path
        self._stream: TextIO | None = None
        if stream_path is not None:
            self._stream = open(stream_path, "w", encoding="utf-8")

    def _record(self, event: dict[str, Any]) -> None:
        if self._stream is not None:
            self._stream.write(json.dumps(event, sort_keys=True) + "\n")
            self._stream.flush()

    def extend(self, events: Iterable[dict[str, Any]]) -> None:
        """Fold shipped events (e.g. a worker's buffer) into the log.

        Each event is re-validated — a worker cannot smuggle an
        out-of-schema event past the type check.
        """
        for event in events:
            event = dict(event)
            type_ = event.pop("type", None)
            event.pop("v", None)
            ts = event.pop("ts", None)
            if type_ not in EVENT_TYPES:
                raise ValueError(f"unknown event type {type_!r} in shipped events")
            merged = {
                "v": EVENT_SCHEMA_VERSION,
                "type": type_,
                "ts": float(ts) if ts is not None else time.time(),
                **self._defaults,
                **event,
            }
            with self._lock:
                self.events.append(merged)
                self._record(merged)

    def close(self) -> None:
        """Close the stream file (idempotent); the in-memory log stays."""
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> EventLog:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def events_from_jsonl(text: str) -> list[dict[str, Any]]:
    """Parse a JSONL event stream back into event dicts (validated)."""
    events = []
    for line in text.splitlines():
        if not line.strip():
            continue
        event = json.loads(line)
        if event.get("type") not in EVENT_TYPES:
            raise ValueError(f"unknown event type {event.get('type')!r}")
        events.append(event)
    return events


def progress_emitter(
    events: EventSink, phase: str, total: int, every: int = 1, **fields: Any
) -> Callable[[int, str | None], None] | None:
    """A per-iteration progress callback for a loop of ``total`` steps,
    or ``None`` when events are disabled (callers guard on that, so the
    disabled path costs one truth test per loop, not per iteration).

    The returned callable takes ``(done, detail)`` and emits a
    ``shard_progress`` event every ``every`` completions (always the
    last one), heartbeating in between.
    """
    if not events.enabled:
        return None

    def on_progress(done: int, detail: str | None = None) -> None:
        if done % every == 0 or done >= total:
            payload = dict(fields)
            if detail is not None:
                payload["detail"] = detail
            events.emit(
                "shard_progress", phase=phase, done=done, total=total, **payload
            )
        else:
            events.heartbeat(phase)

    return on_progress
