"""Cross-algorithm integration tests.

The strongest correctness statement in the repository: on any input,
all three algorithms (and every configuration of them) produce exactly
the same candidate-pair set, which equals the brute-force reference.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.cfd import cfd_points
from repro.datagen.tiger import road_segments
from repro.datagen.triangular import triangular_squares
from repro.datagen.uniform import uniform_squares
from repro.geometry.entity import Entity
from repro.geometry.rect import Rect
from repro.join.api import spatial_join
from repro.join.dataset import SpatialDataset
from repro.join.predicates import WithinDistance
from repro.storage.manager import StorageConfig

from tests.conftest import brute_force_pairs, brute_force_self_pairs

ALGORITHMS = ("s3j", "pbsm", "shj")


def join_all(a, b, **kwargs):
    return {
        algo: spatial_join(a, b, algorithm=algo, **kwargs) for algo in ALGORITHMS
    }


class TestAgreementAcrossWorkloadShapes:
    def test_uniform_vs_uniform(self):
        a = uniform_squares(400, 0.02, seed=1, name="A")
        b = uniform_squares(400, 0.04, seed=2, name="B")
        expected = brute_force_pairs(a, b)
        for algo, result in join_all(a, b).items():
            assert result.pairs == expected, algo

    def test_mixed_sizes_triangular(self):
        tr = triangular_squares(350, 2.0, 8.0, 10.0, seed=3)
        expected = brute_force_self_pairs(tr)
        for algo, result in join_all(tr, tr).items():
            assert result.pairs == expected, algo

    def test_segments_vs_segments(self):
        lb = road_segments(400, seed=4, name="LB")
        mg = road_segments(300, seed=5, name="MG")
        expected = brute_force_pairs(lb, mg)
        for algo, result in join_all(lb, mg).items():
            assert result.pairs == expected, algo

    def test_clustered_points_distance_join(self):
        cfd = cfd_points(500, seed=6)
        eps = 0.01
        expected_candidates = brute_force_self_pairs(cfd, margin=eps / 2)
        for algo, result in join_all(
            cfd, cfd, predicate=WithinDistance(eps)
        ).items():
            assert result.pairs == expected_candidates, algo

    def test_skewed_vs_uniform(self):
        skew = cfd_points(400, seed=7)
        uniform = uniform_squares(300, 0.03, seed=8, name="U")
        expected = brute_force_pairs(skew, uniform)
        for algo, result in join_all(skew, uniform).items():
            assert result.pairs == expected, algo

    def test_tiny_memory_budget(self):
        """Agreement must survive heavy memory pressure (repartitioning
        in PBSM, blockwise joins in SHJ, multi-pass sorts in S3J)."""
        a = uniform_squares(600, 0.03, seed=9, name="A")
        b = uniform_squares(600, 0.03, seed=10, name="B")
        expected = brute_force_pairs(a, b)
        for algo, result in join_all(
            a, b, storage=StorageConfig(buffer_pages=16)
        ).items():
            assert result.pairs == expected, algo


class TestRefinementConsistency:
    def test_refined_subset_of_candidates(self):
        lb = road_segments(250, seed=11)
        for algo in ALGORITHMS:
            result = spatial_join(lb, lb, algorithm=algo, refine=True)
            assert result.refined is not None
            assert result.refined <= result.pairs

    def test_refined_identical_across_algorithms(self):
        lb = road_segments(250, seed=12)
        refined = {
            algo: spatial_join(lb, lb, algorithm=algo, refine=True).refined
            for algo in ALGORITHMS
        }
        values = list(refined.values())
        assert values[0] == values[1] == values[2]


class TestPropertyBasedAgreement:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_random_mixed_workload(self, seed):
        rng = random.Random(seed)
        entities_a = []
        for i in range(rng.randrange(5, 120)):
            x = rng.uniform(0, 1)
            y = rng.uniform(0, 1)
            w = rng.uniform(0, 0.5) * rng.random() ** 2
            h = rng.uniform(0, 0.5) * rng.random() ** 2
            entities_a.append(
                Entity.from_geometry(
                    i, Rect(x, y, min(1, x + w), min(1, y + h))
                )
            )
        entities_b = []
        for i in range(rng.randrange(5, 120)):
            x = rng.uniform(0, 1)
            y = rng.uniform(0, 1)
            entities_b.append(Entity.from_geometry(i, Rect.point(x, y)))
        a = SpatialDataset("A", entities_a)
        b = SpatialDataset("B", entities_b)
        expected = brute_force_pairs(a, b)
        for algo, result in join_all(a, b).items():
            assert result.pairs == expected, (algo, seed)


class TestMetricsSanity:
    def test_phase_times_sum_to_response_time(self):
        a = uniform_squares(300, 0.03, seed=13, name="A")
        b = uniform_squares(300, 0.03, seed=14, name="B")
        for algo, result in join_all(a, b).items():
            metrics = result.metrics
            assert metrics.response_time == pytest.approx(
                sum(metrics.breakdown().values())
            ), algo

    def test_s3j_never_replicates_baselines_may(self):
        big = triangular_squares(300, 1.5, 6.0, 8.0, seed=15)
        results = join_all(big, big)
        assert results["s3j"].metrics.replication_total == 2.0
        assert results["pbsm"].metrics.replication_total >= 2.0
        assert results["shj"].metrics.replication_b >= 1.0

    def test_io_counts_positive(self):
        a = uniform_squares(200, 0.03, seed=16, name="A")
        b = uniform_squares(200, 0.03, seed=17, name="B")
        for algo, result in join_all(a, b).items():
            assert result.metrics.total_ios > 0, algo
            assert result.metrics.total_reads > 0, algo
            assert result.metrics.total_writes > 0, algo
