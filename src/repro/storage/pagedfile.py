"""Append/scan record files organized in fixed-size pages."""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.storage.backend import Record
from repro.storage.iostats import file_label
from repro.storage.records import RecordCodec

if TYPE_CHECKING:
    from repro.storage.buffer import BufferPool


class PagedFile:
    """A named sequence of pages, each holding up to ``E`` records.

    The level files, partition files, run files, and result files of all
    three join algorithms are ``PagedFile`` instances; every access goes
    through the shared buffer pool so the I/O ledger sees it.
    """

    def __init__(
        self, name: str, codec: RecordCodec, page_size: int, pool: BufferPool
    ) -> None:
        self.name = name
        self.codec = codec
        self.page_size = page_size
        self.pool = pool
        self.records_per_page = codec.records_per_page(page_size)
        self.num_pages = 0
        self.num_records = 0
        self._tail_count = 0  # records in the last page
        # Observability only; None disables the per-file hooks.
        self._metrics = pool.metrics
        self._metric_label = file_label(name)

    def __repr__(self) -> str:
        return (
            f"PagedFile({self.name!r}, pages={self.num_pages}, "
            f"records={self.num_records})"
        )

    def append(self, record: Record) -> None:
        """Add one record at the end of the file.

        When the tail page fills, it is written behind immediately so
        only one (partial) buffer page per open output file occupies
        the pool.
        """
        if self.num_pages == 0 or self._tail_count == self.records_per_page:
            if self.num_pages > 0:
                self.pool.write_behind(self.name, self.num_pages - 1)
            frame = self.pool.create(self.name, self.num_pages)
            self.num_pages += 1
            self._tail_count = 0
        else:
            frame = self.pool.fetch(self.name, self.num_pages - 1)
        frame.records.append(record)
        self._tail_count += 1
        self.num_records += 1
        if self._metrics is not None:
            self._metrics.count("file.records_appended", file=self._metric_label)
        self.pool.unpin(self.name, self.num_pages - 1, dirty=True)

    def extend(self, records: Iterable[Record]) -> None:
        """Append an iterable of records, filling whole pages per buffer
        pool interaction instead of one fetch/unpin round-trip each.

        The simulated ledger is kept *identical* to an equivalent loop
        of :meth:`append`: the same pages are created, written behind
        and flushed in the same per-file order, and the buffer-hit count
        matches what the per-record tail-page fetches would have
        recorded (one pool event per record: a create for the first
        record of a fresh page, a hit for every other record landing on
        a buffered tail).  Only the Python-level overhead — ``O(1)``
        pool interactions per *page* instead of per *record* — differs.

        Lazy iterables are consumed one page-chunk at a time, so runs
        larger than memory can still be streamed through.
        """
        source = iter(records)
        hits = 0
        while True:
            fresh = self.num_pages == 0 or self._tail_count == self.records_per_page
            room = self.records_per_page - (0 if fresh else self._tail_count)
            chunk = list(itertools.islice(source, room))
            if not chunk:
                break
            if fresh:
                if self.num_pages > 0:
                    self.pool.write_behind(self.name, self.num_pages - 1)
                frame = self.pool.create(self.name, self.num_pages)
                self.num_pages += 1
                self._tail_count = 0
            else:
                # One fetch for the whole chunk; it records the hit (or
                # the re-read, under pool pressure) the first record's
                # scalar append would have caused.
                frame = self.pool.fetch(self.name, self.num_pages - 1)
            frame.records.extend(chunk)
            self._tail_count += len(chunk)
            self.num_records += len(chunk)
            hits += len(chunk) - 1
            if self._metrics is not None:
                self._metrics.count(
                    "file.records_appended", len(chunk), file=self._metric_label
                )
                self._metrics.observe(
                    "file.extend_chunk_records", len(chunk), file=self._metric_label
                )
            self.pool.unpin(self.name, self.num_pages - 1, dirty=True)
        self.pool.stats.record_hits(hits)

    def append_many(self, records: Iterator[Record] | list[Record]) -> None:
        """Append an iterable of records in order (bulk path; the
        ledger matches a record-at-a-time append loop exactly)."""
        self.extend(records)

    def read_page(self, page_no: int) -> list[Record]:
        """A copy of one page's records."""
        if not 0 <= page_no < self.num_pages:
            raise IndexError(f"page {page_no} outside [0, {self.num_pages})")
        frame = self.pool.fetch(self.name, page_no)
        try:
            return list(frame.records)
        finally:
            self.pool.unpin(self.name, page_no)

    def scan(self) -> Iterator[Record]:
        """Yield every record in file order (page at a time)."""
        for page_no in range(self.num_pages):
            yield from self.read_page(page_no)

    def scan_pages(self) -> Iterator[list[Record]]:
        """Yield page record-lists in file order."""
        for page_no in range(self.num_pages):
            yield self.read_page(page_no)

    def flush(self) -> None:
        """Force dirty pages of this file to the backend."""
        self.pool.flush(self.name)

    # -- metadata adoption ------------------------------------------------

    def adopt_name(self, new_name: str) -> None:
        """Take on a new file name (metric label included).

        This updates only this handle's identity; moving the backend
        pages and buffered frames is the storage manager's job — use
        :meth:`~repro.storage.manager.StorageManager.rename_file`
        rather than calling this directly.
        """
        self.name = new_name
        self._metric_label = file_label(new_name)

    def clone_metadata_from(self, other: PagedFile) -> None:
        """Adopt another file's page/record bookkeeping.

        The public way to make this handle describe pages copied from
        ``other`` (page count, record count, tail fill) without going
        through the append path — e.g. after a raw backend-level page
        copy.  Codecs must match or the adopted counts would be
        meaningless.
        """
        if other.codec.record_size != self.codec.record_size:
            raise ValueError(
                "cannot adopt metadata across codecs with different "
                f"record sizes ({other.codec.record_size} != "
                f"{self.codec.record_size})"
            )
        self.num_pages = other.num_pages
        self.num_records = other.num_records
        self._tail_count = other._tail_count
