"""Tests for repro.geometry.rect."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.rect import UNIT_SQUARE, Rect

coords = st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False)


def rects():
    return st.builds(
        lambda x1, y1, x2, y2: Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2)),
        coords,
        coords,
        coords,
        coords,
    )


class TestConstruction:
    def test_basic_fields(self):
        r = Rect(0.1, 0.2, 0.3, 0.5)
        assert r.width == pytest.approx(0.2)
        assert r.height == pytest.approx(0.3)
        assert r.area == pytest.approx(0.06)

    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            Rect(0.5, 0.0, 0.4, 1.0)
        with pytest.raises(ValueError):
            Rect(0.0, 0.5, 1.0, 0.4)

    def test_degenerate_point_allowed(self):
        r = Rect.point(0.3, 0.7)
        assert r.area == 0.0
        assert r.center == (0.3, 0.7)

    def test_from_center(self):
        r = Rect.from_center(0.5, 0.5, 0.2, 0.4)
        assert r.as_tuple() == pytest.approx((0.4, 0.3, 0.6, 0.7))

    def test_from_center_negative_size_raises(self):
        with pytest.raises(ValueError):
            Rect.from_center(0.5, 0.5, -0.1, 0.1)


class TestPredicates:
    def test_overlapping(self):
        assert Rect(0, 0, 0.5, 0.5).intersects(Rect(0.4, 0.4, 1, 1))

    def test_disjoint(self):
        assert not Rect(0, 0, 0.3, 0.3).intersects(Rect(0.4, 0.4, 1, 1))

    def test_touching_edges_count(self):
        assert Rect(0, 0, 0.5, 1).intersects(Rect(0.5, 0, 1, 1))

    def test_touching_corner_counts(self):
        assert Rect(0, 0, 0.5, 0.5).intersects(Rect(0.5, 0.5, 1, 1))

    def test_contains(self):
        assert UNIT_SQUARE.contains(Rect(0.1, 0.1, 0.9, 0.9))
        assert not Rect(0.1, 0.1, 0.9, 0.9).contains(UNIT_SQUARE)

    def test_contains_self(self):
        r = Rect(0.1, 0.1, 0.9, 0.9)
        assert r.contains(r)

    def test_contains_point(self):
        r = Rect(0.2, 0.2, 0.8, 0.8)
        assert r.contains_point(0.2, 0.8)
        assert not r.contains_point(0.1, 0.5)


class TestOperations:
    def test_intersection_overlap(self):
        inter = Rect(0, 0, 0.6, 0.6).intersection(Rect(0.4, 0.4, 1, 1))
        assert inter == Rect(0.4, 0.4, 0.6, 0.6)

    def test_intersection_disjoint_is_none(self):
        assert Rect(0, 0, 0.2, 0.2).intersection(Rect(0.5, 0.5, 1, 1)) is None

    def test_union(self):
        u = Rect(0, 0, 0.2, 0.2).union(Rect(0.5, 0.5, 1, 1))
        assert u == UNIT_SQUARE

    def test_expanded(self):
        r = Rect(0.4, 0.4, 0.6, 0.6).expanded(0.1)
        assert r.as_tuple() == pytest.approx((0.3, 0.3, 0.7, 0.7))

    def test_expanded_negative_raises(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 1, 1).expanded(-0.1)

    def test_clamped(self):
        r = Rect(-0.5, 0.5, 1.5, 2.0).clamped()
        assert r == Rect(0.0, 0.5, 1.0, 1.0)

    def test_min_distance_zero_when_overlapping(self):
        assert Rect(0, 0, 0.5, 0.5).min_distance(Rect(0.4, 0.4, 1, 1)) == 0.0

    def test_min_distance_axis(self):
        assert Rect(0, 0, 0.2, 1).min_distance(Rect(0.5, 0, 1, 1)) == pytest.approx(0.3)

    def test_min_distance_diagonal(self):
        d = Rect(0, 0, 0.1, 0.1).min_distance(Rect(0.4, 0.5, 1, 1))
        assert d == pytest.approx(math.hypot(0.3, 0.4))


class TestProperties:
    @given(rects(), rects())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(rects(), rects())
    def test_intersection_consistent_with_intersects(self, a, b):
        inter = a.intersection(b)
        assert (inter is not None) == a.intersects(b)
        if inter is not None:
            assert a.contains(inter) and b.contains(inter)

    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains(a) and u.contains(b)

    @given(rects(), rects())
    def test_min_distance_symmetric(self, a, b):
        assert a.min_distance(b) == pytest.approx(b.min_distance(a))

    @given(rects(), rects())
    def test_distance_zero_iff_intersects(self, a, b):
        if a.intersects(b):
            assert a.min_distance(b) == 0.0
        else:
            assert a.min_distance(b) > 0.0

    @given(rects(), st.floats(0.0, 0.3))
    def test_expansion_monotone(self, r, margin):
        grown = r.expanded(margin)
        assert grown.contains(r)
