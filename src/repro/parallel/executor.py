"""The sharded join executor: run a :class:`ShardPlan` and merge.

Each :class:`~repro.parallel.planner.ShardTask` is one complete,
independent spatial join — the worker runs the *unmodified* algorithm
(:func:`repro.join.api.spatial_join`) over the shard's datasets with
its own :class:`~repro.storage.manager.StorageManager`, ledger, and
observability, and ships back a picklable summary (sorted pairs, the
metrics dict, metric series, span trees).

Determinism: the plan is a pure function of the inputs and the shard
level (never of the worker count), tasks are submitted and merged in
plan order, and every merged quantity (pair set, per-phase ledger sums,
weighted replication factors, the details dict) is computed from the
per-shard summaries alone — so a run with ``workers=4`` returns metrics
byte-identical to ``workers=1``, which executes the very same worker
function in-process.

Merging rules (DESIGN.md section 9):

- **pairs** — union over shards, then
  :func:`~repro.join.result.canonical_pairs` (a self join's residual
  cross join reintroduces mirrored pairs; cell shards of a non-self
  join are disjoint by construction).
- **ledger** — per-phase :class:`~repro.storage.iostats.PhaseStats`
  add up (``merged_into``), so the merged totals are exactly the sum
  of the per-shard ledgers.
- **replication** — input-size-weighted average of the per-shard
  factors (equation 9 is a ratio, so shard ratios are weighted by the
  records that produced them).
- **observability** — worker span trees are grafted under one
  ``parallel_join`` root as ``shard:<id>`` children; worker metric
  registries fold into the caller's via
  :meth:`~repro.obs.metrics.MetricsRegistry.merge_dump`.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import ProcessPoolExecutor
from typing import Any

from repro.join.dataset import SpatialDataset
from repro.join.metrics import JoinMetrics
from repro.join.predicates import Intersects, JoinPredicate
from repro.join.result import JoinResult, canonical_pairs
from repro.obs import NULL_TRACER, Observability, Span, TABLE2_PHASES
from repro.parallel.planner import ShardPlan, ShardTask, default_shard_level, plan_shards
from repro.storage.iostats import PhaseStats
from repro.storage.manager import StorageConfig, StorageManager


def _shard_payload(
    task: ShardTask,
    algorithm: str,
    predicate: JoinPredicate,
    config: StorageConfig | None,
    refine: bool,
    instrument: bool,
    params: dict[str, Any],
) -> dict[str, Any]:
    """Everything one worker needs, as a picklable dict."""
    return {
        "shard_id": task.shard_id,
        "kind": task.kind,
        "dataset_a": task.dataset_a,
        "dataset_b": None if task.self_join else task.dataset_b,
        "self_join": task.self_join,
        "algorithm": algorithm,
        "predicate": predicate,
        "config": config,
        "refine": refine,
        "instrument": instrument,
        "params": params,
    }


def _run_shard(payload: dict[str, Any]) -> dict[str, Any]:
    """Execute one shard's sub-join (module-level so it pickles).

    Runs in a worker process for ``workers > 1`` and in-process for
    ``workers = 1`` — the same code path either way, so worker count
    can only affect wall-clock, never results.
    """
    from repro.join.api import spatial_join

    dataset_a: SpatialDataset = payload["dataset_a"]
    dataset_b: SpatialDataset = (
        dataset_a if payload["self_join"] else payload["dataset_b"]
    )
    config: StorageConfig | None = payload["config"]
    if config is not None and config.backend == "disk" and config.directory is not None:
        # A shared on-disk directory would collide across shards (every
        # sub-join names its files input-A-<n>...): give each worker a
        # private temporary directory instead.
        config = dataclasses.replace(config, directory=None)
    obs = Observability() if payload["instrument"] else None

    result = spatial_join(
        dataset_a,
        dataset_b,
        algorithm=payload["algorithm"],
        predicate=payload["predicate"],
        storage=config,
        refine=payload["refine"],
        obs=obs,
        **payload["params"],
    )

    out: dict[str, Any] = {
        "shard_id": payload["shard_id"],
        "kind": payload["kind"],
        "input_records": len(dataset_a) + len(dataset_b),
        "pairs": sorted(result.pairs),
        "refined": None if result.refined is None else sorted(result.refined),
        "metrics": result.metrics.to_dict(),
    }
    if obs is not None:
        out["metric_series"] = obs.metrics.as_dict()
        out["spans"] = obs.tracer.to_dicts()
    return out


def _merge_metrics(
    shard_results: list[dict[str, Any]],
    algorithm: str,
    plan: ShardPlan,
    config: StorageConfig | None,
) -> JoinMetrics:
    """Fold per-shard :class:`JoinMetrics` dumps into one ledger."""
    shard_metrics = [JoinMetrics.from_dict(r["metrics"]) for r in shard_results]

    phases: dict[str, PhaseStats] = {}
    for metrics in shard_metrics:
        for name, stats in metrics.phases.items():
            stats.merged_into(phases.setdefault(name, PhaseStats()))

    if shard_metrics:
        phase_names = shard_metrics[0].phase_names
        cost_model = shard_metrics[0].cost_model
    else:  # degenerate plan (an empty input side): nothing ran
        phase_names = TABLE2_PHASES.get(algorithm.lower(), ())
        cost_model = (config or StorageConfig()).cost_model

    weights = [r["input_records"] for r in shard_results]
    total_weight = sum(weights)
    if total_weight:
        replication_a = (
            sum(m.replication_a * w for m, w in zip(shard_metrics, weights))
            / total_weight
        )
        replication_b = (
            sum(m.replication_b * w for m, w in zip(shard_metrics, weights))
            / total_weight
        )
    else:
        replication_a = replication_b = 1.0

    # Deliberately excludes the worker count: it is an execution knob
    # that may only change wall-clock, so the merged metrics must be
    # byte-identical for every value of it (it lives on the
    # ``parallel_join`` span instead).
    details: dict[str, Any] = {
        "parallel": True,
        "plan": plan.describe(),
        "shards": [
            {
                "shard_id": r["shard_id"],
                "kind": r["kind"],
                "input_records": r["input_records"],
                "pairs": len(r["pairs"]),
                "total_ios": m.total_ios,
                "response_time": m.response_time,
            }
            for r, m in zip(shard_results, shard_metrics)
        ],
    }
    return JoinMetrics(
        algorithm=algorithm,
        phase_names=phase_names,
        phases=phases,
        cost_model=cost_model,
        replication_a=replication_a,
        replication_b=replication_b,
        details=details,
    )


def _graft_observability(
    obs: Observability,
    root: Span,
    shard_results: list[dict[str, Any]],
) -> None:
    """Attach worker span trees and metric series to the caller's obs."""
    for result in shard_results:
        spans = result.get("spans")
        if spans is not None and obs.tracer.enabled:
            shard_span = Span(
                f"shard:{result['shard_id']}",
                root.start_s,
                {"kind": result["kind"], "input_records": result["input_records"]},
            )
            shard_span.children = [Span.from_dict(d) for d in spans]
            shard_span.wall_s = sum(c.wall_s for c in shard_span.children)
            shard_span.cpu_s = sum(c.cpu_s for c in shard_span.children)
            root.children.append(shard_span)
        series = result.get("metric_series")
        if series is not None and obs.metrics.enabled:
            obs.metrics.merge_dump(series)


def parallel_spatial_join(
    dataset_a: SpatialDataset,
    dataset_b: SpatialDataset,
    algorithm: str = "s3j",
    predicate: JoinPredicate | None = None,
    storage: StorageConfig | None = None,
    refine: bool = False,
    obs: Observability | None = None,
    workers: int = 1,
    shard_level: int | None = None,
    **params: Any,
) -> JoinResult:
    """Run a spatial join sharded by Hilbert key range.

    The inputs are routed into the ``4^shard_level`` level-``k``
    quadrant shards plus a residual shard of large entities (see
    :mod:`repro.parallel.planner`), the resulting independent sub-joins
    run on ``workers`` processes (in-process when ``workers=1``), and
    pair sets, ledgers, and observability output merge
    deterministically — the result is identical for every worker count.

    ``storage`` must be a :class:`StorageConfig` (or ``None`` for the
    per-shard paper default): a live :class:`StorageManager` cannot be
    shared across processes.  Passing the same object for both datasets
    runs a self join, exactly as in :func:`~repro.join.api.spatial_join`.
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    if isinstance(storage, StorageManager):
        raise ValueError(
            "parallel_spatial_join needs a StorageConfig, not a live "
            "StorageManager: every shard builds its own storage"
        )
    from repro.join.api import available_algorithms

    if algorithm.lower() not in available_algorithms():
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {available_algorithms()}"
        )
    predicate = predicate or Intersects()
    self_join = dataset_a is dataset_b
    if shard_level is None:
        shard_level = default_shard_level(workers)

    plan = plan_shards(
        dataset_a,
        dataset_b,
        shard_level,
        curve=params.get("curve"),
        margin=predicate.mbr_margin,
    )
    instrument = obs is not None and obs.enabled
    payloads = [
        _shard_payload(
            task, algorithm, predicate, storage, refine, instrument, params
        )
        for task in plan.tasks
    ]

    tracer = obs.tracer if obs is not None else NULL_TRACER
    with tracer.span(
        "parallel_join",
        algorithm=algorithm,
        workers=workers,
        shard_level=shard_level,
        tasks=len(plan.tasks),
        self_join=self_join,
    ) as root:
        if workers == 1 or len(payloads) <= 1:
            shard_results = [_run_shard(p) for p in payloads]
        else:
            pool_size = min(workers, len(payloads))
            with ProcessPoolExecutor(max_workers=pool_size) as pool:
                # map() preserves submission order = plan order.
                shard_results = list(pool.map(_run_shard, payloads))

        raw_pairs: set[tuple[int, int]] = set()
        for result in shard_results:
            raw_pairs.update(tuple(pair) for pair in result["pairs"])
        pairs = canonical_pairs(raw_pairs, self_join)

        refined = None
        if refine:
            raw_refined: set[tuple[int, int]] = set()
            for result in shard_results:
                raw_refined.update(tuple(pair) for pair in result["refined"] or ())
            refined = canonical_pairs(raw_refined, self_join)

        metrics = _merge_metrics(shard_results, algorithm, plan, storage)
        metrics.details["shard_level"] = shard_level

        if obs is not None and obs.enabled:
            _graft_observability(obs, root, shard_results)
        root.set(candidate_pairs=len(pairs))

    return JoinResult(pairs=pairs, metrics=metrics, self_join=self_join, refined=refined)
