"""The six evaluation workloads (figures 8-10 / Table 4).

Each workload names its data sets, predicate, and the two PBSM tile
settings the paper plots ("PBSM with a number of tiles that achieves
satisfactory load balance, and a number larger than that").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datagen.paper import default_scale, paper_datasets
from repro.datagen.shift import shifted_copy
from repro.join.dataset import SpatialDataset
from repro.join.predicates import Intersects, JoinPredicate, WithinDistance


@dataclass(frozen=True)
class Workload:
    """One evaluation workload."""

    name: str
    figure: str
    dataset_a: str
    dataset_b: str          # same as dataset_a -> self join
    tiles_small: int
    tiles_large: int
    shifted_b: bool = False  # B is the shifted copy of A (LB', MG')
    eps: float = 0.0         # within-distance epsilon (0 = overlap)
    paper_normalized: dict[str, float] = field(default_factory=dict)
    paper_replication: dict[str, float] = field(default_factory=dict)

    @property
    def self_join(self) -> bool:
        return self.dataset_a == self.dataset_b and not self.shifted_b

    def predicate(self) -> JoinPredicate:
        """The workload's join predicate."""
        return WithinDistance(self.eps) if self.eps > 0 else Intersects()

    def datasets(
        self, scale: float | None = None
    ) -> tuple[SpatialDataset, SpatialDataset]:
        """Materialize (A, B); B *is* A for self joins."""
        if scale is None:
            scale = default_scale()
        names = (
            (self.dataset_a,)
            if self.self_join or self.shifted_b
            else (self.dataset_a, self.dataset_b)
        )
        made = paper_datasets(scale, only=names)
        a = made[self.dataset_a]
        if self.self_join:
            return a, a
        if self.shifted_b:
            return a, shifted_copy(a)
        return a, made[self.dataset_b]


WORKLOADS: tuple[Workload, ...] = (
    Workload(
        name="UN1-UN2",
        figure="8a",
        dataset_a="UN1",
        dataset_b="UN2",
        tiles_small=20,
        tiles_large=40,
        paper_normalized={"pbsm_small": 1.3, "pbsm_large": 1.5, "shj": 1.35},
        paper_replication={"pbsm_small": 2.44, "pbsm_large": 3.3, "shj": 1.5},
    ),
    Workload(
        name="UN2-UN3",
        figure="8b",
        dataset_a="UN2",
        dataset_b="UN3",
        tiles_small=20,
        tiles_large=40,
        paper_normalized={"pbsm_small": 1.58, "pbsm_large": 1.85, "shj": 1.38},
        paper_replication={"pbsm_small": 2.66, "pbsm_large": 3.8, "shj": 1.6},
    ),
    Workload(
        name="LB-LB'",
        figure="9a",
        dataset_a="LB",
        dataset_b="LB",
        tiles_small=40,
        tiles_large=50,
        shifted_b=True,
        paper_normalized={"pbsm_small": 1.9, "pbsm_large": 2.34, "shj": 1.33},
        paper_replication={"pbsm_small": 2.4, "pbsm_large": 3.0, "shj": 1.62},
    ),
    Workload(
        name="MG-MG'",
        figure="9b",
        dataset_a="MG",
        dataset_b="MG",
        tiles_small=40,
        tiles_large=50,
        shifted_b=True,
        paper_normalized={"pbsm_small": 1.92, "pbsm_large": 2.26, "shj": 1.4},
        paper_replication={"pbsm_small": 2.62, "pbsm_large": 3.2, "shj": 1.5},
    ),
    Workload(
        name="TR",
        figure="10a",
        dataset_a="TR",
        dataset_b="TR",
        tiles_small=10,
        tiles_large=30,
        paper_normalized={"pbsm_small": 2.32, "pbsm_large": 3.1, "shj": 2.65},
        paper_replication={"pbsm_small": 4.92, "pbsm_large": 7.8, "shj": 10.0},
    ),
    Workload(
        name="CFD",
        figure="10b",
        dataset_a="CFD",
        dataset_b="CFD",
        tiles_small=40,
        tiles_large=80,
        eps=1e-6,
        paper_normalized={"pbsm_small": 1.75, "pbsm_large": 1.96, "shj": 3.04},
        paper_replication={"pbsm_small": 4.2, "pbsm_large": 4.6, "shj": 4.0},
    ),
)


def workload_by_name(name: str) -> Workload:
    """Look one workload up by its Table 4 row name."""
    for workload in WORKLOADS:
        if workload.name == name:
            return workload
    raise ValueError(
        f"unknown workload {name!r}; choose from {[w.name for w in WORKLOADS]}"
    )
