"""Benchmark trajectory store: history, deltas, and the regression gate.

Every ``BENCH_*.json`` artifact is a point-in-time number; this module
gives them a time axis.  ``append`` folds an artifact into a JSONL
history file (one entry per benchmark run, schema-versioned); ``check``
compares a fresh artifact against the **rolling median** of the last
``WINDOW`` history entries and fails when a gated metric regressed by
more than its threshold (default 20%); ``show`` prints the trajectory.

Gating policy:

- Gated metrics are **machine-portable ratios** (the fast-path
  ``speedup``: both sides of the division ran on the same host in the
  same process, so the ratio survives moving between the dev box and a
  CI runner).  Absolute wall-clock metrics are tracked in the history
  for trend plots but never gated.
- The comparison baseline is the rolling **median**, not the last run
  — one noisy history entry cannot poison the gate.
- A gate needs ``min_samples`` history entries before it fires; until
  then it reports "insufficient history" and passes, so a fresh clone
  is never blocked by its own first run.

CLI::

    python -m benchmarks.trajectory append BENCH_fastpath.json
    python -m benchmarks.trajectory check  BENCH_fastpath.json
    python -m benchmarks.trajectory show   fastpath

The history file defaults to ``benchmarks/history/<bench>.jsonl``
(committed, so CI has a baseline) and is written atomically.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.obs.fileio import atomic_write_text

HISTORY_SCHEMA_VERSION = 1

HISTORY_DIR = Path(__file__).resolve().parent / "history"
"""Committed rolling-baseline home: ``benchmarks/history/<bench>.jsonl``."""

WINDOW = 8
"""History entries the rolling median is computed over (most recent)."""

DEFAULT_THRESHOLD = 0.20
"""A gated metric may degrade by at most this fraction vs the median."""

DEFAULT_MIN_SAMPLES = 3
"""History entries a gate needs before it can fire."""


@dataclass(frozen=True)
class GateSpec:
    """One gated metric of one benchmark.

    ``direction`` is ``"higher"`` when bigger is better (speedup,
    throughput) or ``"lower"`` when smaller is better (latency).
    ``select`` extracts the metric values from an artifact payload as
    ``{series_label: value}`` — one gate can cover several rows.
    """

    metric: str
    select: Callable[[dict[str, Any]], dict[str, float]]
    direction: str = "higher"
    threshold: float = DEFAULT_THRESHOLD
    min_samples: int = DEFAULT_MIN_SAMPLES

    def regressed(self, current: float, baseline: float) -> bool:
        if baseline <= 0:
            return False
        if self.direction == "higher":
            return current < baseline * (1.0 - self.threshold)
        return current > baseline * (1.0 + self.threshold)


def _fastpath_metrics(payload: dict[str, Any]) -> dict[str, float]:
    return {
        f"speedup[{row['workload']}]": float(row["speedup"])
        for row in payload.get("rows", [])
        if "speedup" in row
    }


def _fastpath_throughput(payload: dict[str, Any]) -> dict[str, float]:
    return {
        f"memory_pairs_per_s[{row['workload']}]": float(
            row["memory_pairs_per_s"]
        )
        for row in payload.get("rows", [])
        if "memory_pairs_per_s" in row
    }


def _parallel_balance(payload: dict[str, Any]) -> dict[str, float]:
    skew = payload.get("skew") or {}
    if "balance_ratio" not in skew:
        return {}
    label = f"balance_ratio[skewed@{skew.get('workers', '?')}w]"
    return {label: float(skew["balance_ratio"])}


def _service_qps(payload: dict[str, Any]) -> dict[str, float]:
    if "service_qps" not in payload:
        return {}
    return {"service_qps": float(payload["service_qps"])}


def _durable_overhead(payload: dict[str, Any]) -> dict[str, float]:
    if "durable_overhead" not in payload:
        return {}
    return {"durable_overhead": float(payload["durable_overhead"])}


GATES: dict[str, tuple[GateSpec, ...]] = {
    "fastpath": (
        GateSpec(metric="speedup", select=_fastpath_metrics),
        # Throughput is host-dependent: tracked (history/`show`) but a
        # wide threshold so only a collapse — not a slower runner —
        # fires it.  The portable speedup ratio is the tight gate.
        GateSpec(
            metric="memory_pairs_per_s",
            select=_fastpath_throughput,
            threshold=0.60,
        ),
    ),
    # Legacy-planner record imbalance over two-layer record imbalance
    # on the fixed skewed workload.  Both sides are pure functions of
    # the shard plan — no wall-clock — so the ratio is deterministic
    # across hosts; any drop means the two-layer planner lost balance.
    "parallel_scaling": (
        GateSpec(metric="balance_ratio", select=_parallel_balance),
    ),
    # Service throughput over real TCP is host-dependent, so like the
    # fast-path pairs/s gate it only fires on a collapse, not on a
    # slower runner; correctness of every response is checked inside
    # the benchmark itself.
    "service": (
        GateSpec(metric="service_qps", select=_service_qps, threshold=0.60),
    ),
    # Durable-over-memory wall ratio: both sides share the run, so the
    # ratio is portable, but fsync cost still swings with the
    # filesystem — collapse-only threshold like the throughput gates.
    "durable": (
        GateSpec(
            metric="durable_overhead",
            select=_durable_overhead,
            direction="lower",
            threshold=0.60,
        ),
    ),
}
"""Per-benchmark gate specs; benchmarks without an entry are
history-tracked only."""


# -- history file ------------------------------------------------------


def bench_name_of(artifact_path: str | os.PathLike[str]) -> str:
    """``BENCH_fastpath.json`` -> ``fastpath``."""
    stem = Path(artifact_path).name
    if stem.startswith("BENCH_") and stem.endswith(".json"):
        return stem[len("BENCH_") : -len(".json")]
    return Path(artifact_path).stem


def history_path(bench: str, history_dir: Path | None = None) -> Path:
    return (history_dir or HISTORY_DIR) / f"{bench}.jsonl"


def load_history(path: Path) -> list[dict[str, Any]]:
    """Parse a history JSONL file (missing file -> empty history)."""
    if not path.exists():
        return []
    entries = []
    for line in path.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        entry = json.loads(line)
        if entry.get("schema") != HISTORY_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported history schema {entry.get('schema')!r} in {path}"
            )
        entries.append(entry)
    return entries


def make_entry(
    bench: str, payload: dict[str, Any], meta: dict[str, Any] | None = None
) -> dict[str, Any]:
    """One history entry: every gate's metrics plus run configuration."""
    metrics: dict[str, float] = {}
    for gate in GATES.get(bench, ()):
        metrics.update(gate.select(payload))
    config = {
        key: payload[key]
        for key in (
            "entities",
            "entities_per_side",
            "repeats",
            "min_speedup",
            "clients",
            "ops_per_client",
        )
        if key in payload
    }
    return {
        "schema": HISTORY_SCHEMA_VERSION,
        "bench": bench,
        "ts": time.time(),
        "config": config,
        "metrics": metrics,
        "meta": meta or {},
    }


def append_entry(
    bench: str,
    payload: dict[str, Any],
    history_dir: Path | None = None,
    meta: dict[str, Any] | None = None,
) -> Path:
    """Fold one artifact into the history (atomic rewrite)."""
    path = history_path(bench, history_dir)
    entries = load_history(path)
    entries.append(make_entry(bench, payload, meta))
    path.parent.mkdir(parents=True, exist_ok=True)
    text = "".join(json.dumps(entry, sort_keys=True) + "\n" for entry in entries)
    atomic_write_text(path, text)
    return path


# -- the gate ----------------------------------------------------------


@dataclass
class GateResult:
    """One metric series' verdict."""

    metric: str
    current: float
    baseline: float | None
    samples: int
    regressed: bool
    threshold: float
    direction: str

    @property
    def delta(self) -> float | None:
        if self.baseline is None or self.baseline == 0:
            return None
        return self.current / self.baseline - 1.0

    def describe(self) -> str:
        if self.baseline is None:
            return (
                f"{self.metric}: {self.current:.3f} "
                f"(insufficient history: {self.samples} samples)"
            )
        arrow = "REGRESSED" if self.regressed else "ok"
        return (
            f"{self.metric}: {self.current:.3f} vs median {self.baseline:.3f} "
            f"({self.delta:+.1%}, {self.direction} is better, "
            f"threshold {self.threshold:.0%}) {arrow}"
        )


@dataclass
class GateReport:
    """The whole artifact's verdict against its history."""

    bench: str
    results: list[GateResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(result.regressed for result in self.results)

    def describe(self) -> str:
        lines = [f"trajectory gate: {self.bench}"]
        lines += [f"  {result.describe()}" for result in self.results]
        lines.append(f"  => {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def check_artifact(
    payload: dict[str, Any],
    bench: str,
    history: list[dict[str, Any]],
    window: int = WINDOW,
) -> GateReport:
    """Gate one artifact against the rolling median of its history."""
    report = GateReport(bench=bench)
    recent = history[-window:]
    for gate in GATES.get(bench, ()):
        for label, current in sorted(gate.select(payload).items()):
            series = [
                entry["metrics"][label]
                for entry in recent
                if label in entry.get("metrics", {})
            ]
            if len(series) < gate.min_samples:
                report.results.append(
                    GateResult(
                        metric=label,
                        current=current,
                        baseline=None,
                        samples=len(series),
                        regressed=False,
                        threshold=gate.threshold,
                        direction=gate.direction,
                    )
                )
                continue
            baseline = statistics.median(series)
            report.results.append(
                GateResult(
                    metric=label,
                    current=current,
                    baseline=baseline,
                    samples=len(series),
                    regressed=gate.regressed(current, baseline),
                    threshold=gate.threshold,
                    direction=gate.direction,
                )
            )
    return report


# -- CLI ---------------------------------------------------------------


def _load_artifact(path: str) -> dict[str, Any]:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def cmd_check(args: argparse.Namespace) -> int:
    payload = _load_artifact(args.artifact)
    bench = args.bench or bench_name_of(args.artifact)
    if bench not in GATES:
        print(f"no gates registered for benchmark {bench!r}; nothing to check")
        return 0
    history = load_history(history_path(bench, args.history_dir))
    report = check_artifact(payload, bench, history, window=args.window)
    print(report.describe())
    return 0 if report.ok else 1


def cmd_append(args: argparse.Namespace) -> int:
    payload = _load_artifact(args.artifact)
    bench = args.bench or bench_name_of(args.artifact)
    meta = {"source": os.path.basename(args.artifact)}
    path = append_entry(bench, payload, args.history_dir, meta=meta)
    entries = load_history(path)
    print(f"appended to {path} ({len(entries)} entries)")
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    path = history_path(args.bench, args.history_dir)
    entries = load_history(path)
    if not entries:
        print(f"no history for {args.bench!r} at {path}")
        return 1
    labels = sorted(
        {label for entry in entries for label in entry.get("metrics", {})}
    )
    print(f"{args.bench}: {len(entries)} entries in {path}")
    for label in labels:
        series = [
            entry["metrics"][label]
            for entry in entries
            if label in entry.get("metrics", {})
        ]
        recent = series[-WINDOW:]
        median = statistics.median(recent)
        print(
            f"  {label:<36} last={series[-1]:.3f} "
            f"median[{len(recent)}]={median:.3f} "
            f"min={min(series):.3f} max={max(series):.3f}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="trajectory", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--history-dir",
        type=Path,
        default=None,
        help=f"history directory (default: {HISTORY_DIR})",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser(
        "check", help="gate an artifact against the rolling median"
    )
    check.add_argument("artifact", help="a BENCH_*.json artifact")
    check.add_argument("--bench", default=None, help="benchmark name override")
    check.add_argument("--window", type=int, default=WINDOW)

    append = commands.add_parser(
        "append", help="fold an artifact into the history"
    )
    append.add_argument("artifact", help="a BENCH_*.json artifact")
    append.add_argument("--bench", default=None, help="benchmark name override")

    show = commands.add_parser("show", help="print a benchmark's trajectory")
    show.add_argument("bench", help="benchmark name (e.g. fastpath)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"check": cmd_check, "append": cmd_append, "show": cmd_show}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
