"""The service differential gate: live index vs cold-batch oracle.

Replays a randomized sequence of interleaved queries, inserts, deletes,
and compactions against a :class:`~repro.service.api.JoinService` and
checks, **at every index epoch**, that the service's answers are
exactly what a cold batch :func:`~repro.join.api.spatial_join` (and a
brute-force window scan) computes over the same live entity set.  The
live index never gets to drift from first principles: every mutation is
immediately followed by a full re-derivation from scratch.

With ``faults=True`` the index's storage runs under a scheduled
:class:`~repro.faults.plan.FaultPlan` (a burst of transient read
faults mid-sequence), and the gate additionally asserts the service's
trichotomy: every query ends **correct** (equal to the oracle), **loud**
(``status="failed"`` with a typed error), or **declared-partial**
(``status="partial"`` carrying a ``CircuitOpen``
:class:`~repro.faults.errors.ShardFailure`) — and partial results are
admissible *only* while the circuit breaker is open.  After the fault
burst passes, the breaker must close again and answers must return to
exact oracle equality.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.datagen.uniform import uniform_squares
from repro.faults.plan import FaultPlan, ScheduledFault
from repro.geometry.entity import Entity
from repro.geometry.rect import Rect
from repro.join.api import spatial_join
from repro.service.api import BreakerState, JoinService, ServiceConfig
from repro.service.index import PersistentIndex
from repro.storage.manager import StorageConfig

Progress = Callable[[str], None]


@dataclass
class ServiceViolation:
    """One departure from the oracle (or from the trichotomy)."""

    step: int
    op: str
    epoch: int
    detail: str

    def describe(self) -> str:
        return f"step {self.step} [{self.op}] epoch {self.epoch}: {self.detail}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "step": self.step,
            "op": self.op,
            "epoch": self.epoch,
            "detail": self.detail,
        }


@dataclass
class ServiceVerifyReport:
    """The gate's verdict over one replayed sequence."""

    ops: int = 0
    epochs_checked: int = 0
    join_checks: int = 0
    window_checks: int = 0
    ok_queries: int = 0
    failed_queries: int = 0
    partial_queries: int = 0
    compactions: int = 0
    breaker_opened: int = 0
    faults: bool = False
    violations: list[ServiceViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        lines = [
            "service differential gate: "
            + ("PASS" if self.ok else "FAIL"),
            f"  ops replayed       : {self.ops}"
            + (" (with injected faults)" if self.faults else ""),
            f"  epochs checked     : {self.epochs_checked}",
            f"  join/window checks : {self.join_checks}/{self.window_checks}",
            f"  query outcomes     : {self.ok_queries} ok, "
            f"{self.failed_queries} failed, {self.partial_queries} partial",
            f"  compactions        : {self.compactions}",
            f"  breaker opened     : {self.breaker_opened}x",
        ]
        lines += [f"  VIOLATION {v.describe()}" for v in self.violations]
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "ops": self.ops,
            "epochs_checked": self.epochs_checked,
            "join_checks": self.join_checks,
            "window_checks": self.window_checks,
            "ok_queries": self.ok_queries,
            "failed_queries": self.failed_queries,
            "partial_queries": self.partial_queries,
            "compactions": self.compactions,
            "breaker_opened": self.breaker_opened,
            "faults": self.faults,
            "violations": [v.to_dict() for v in self.violations],
        }


def _brute_window(entities: list[Entity], window: Rect) -> tuple[int, ...]:
    return tuple(
        sorted(e.eid for e in entities if e.mbr.intersects(window))
    )


def run_service_verify(
    seed: int = 0,
    ops: int = 60,
    entities: int = 120,
    faults: bool = True,
    progress: Progress | None = None,
) -> ServiceVerifyReport:
    """Replay one randomized op sequence through the gate (see module
    docstring).  Deterministic in ``seed`` up to breaker timing."""
    return asyncio.run(
        _run_service_verify(seed, ops, entities, faults, progress)
    )


async def _run_service_verify(
    seed: int,
    ops: int,
    entities: int,
    faults: bool,
    progress: Progress | None,
) -> ServiceVerifyReport:
    rng = random.Random(seed)
    report = ServiceVerifyReport(faults=faults)
    note = progress or (lambda message: None)

    dataset = uniform_squares(entities, 0.04, seed=seed + 1, name="SVC-VERIFY")
    fault_plan = None
    if faults:
        # A burst of transient read faults beginning mid-sequence.  The
        # breaker must trip (loud failures first, then declared-partial
        # service), and once probing queries burn through the window the
        # service must recover to exact answers.
        fault_plan = FaultPlan(
            schedule=(
                ScheduledFault(op="read", kind="transient", first=40, last=70),
            )
        )
    index = PersistentIndex(
        dataset.entities,
        storage=StorageConfig(fault_plan=fault_plan),
        compaction_threshold=10**9,  # compaction is an explicit replay op
    )
    config = ServiceConfig(
        breaker_threshold=2,
        breaker_reset_s=0.02,
        cache_size=64,
        compaction_interval_s=60.0,
    )
    service = JoinService(index, config)

    next_eid = max((e.eid for e in dataset.entities), default=0) + 1

    async def check_epoch(step: int) -> None:
        """Full re-derivation: the service's join and a window query
        against cold-batch / brute-force oracles over the live set."""
        live = index.snapshot_dataset()
        outcome = await service.join()
        state = service.breaker.state
        _tally(report, outcome.status)
        if outcome.status == "ok":
            oracle = spatial_join(live, live, algorithm="s3j").pairs
            report.join_checks += 1
            if outcome.pairs != oracle:
                missing = len(oracle - outcome.pairs)
                extra = len(outcome.pairs - oracle)
                report.violations.append(
                    ServiceViolation(
                        step,
                        "join",
                        outcome.epoch,
                        f"pair set diverged from cold spatial_join: "
                        f"{missing} missing, {extra} extra",
                    )
                )
        else:
            _check_non_ok(report, step, "join", outcome, state)

        window = Rect(
            rng.uniform(0.0, 0.6),
            rng.uniform(0.0, 0.6),
            rng.uniform(0.6, 1.0),
            rng.uniform(0.6, 1.0),
        )
        w_outcome = await service.window(
            window.xlo, window.ylo, window.xhi, window.yhi
        )
        state = service.breaker.state
        _tally(report, w_outcome.status)
        if w_outcome.status == "ok":
            report.window_checks += 1
            brute = _brute_window(index.live_entities(), window)
            if w_outcome.eids != brute:
                report.violations.append(
                    ServiceViolation(
                        step,
                        "window",
                        w_outcome.epoch,
                        f"window result diverged from brute force: "
                        f"got {len(w_outcome.eids or ())}, "
                        f"expected {len(brute)}",
                    )
                )
        else:
            _check_non_ok(report, step, "window", w_outcome, state)
        report.epochs_checked += 1

    await check_epoch(0)
    for step in range(1, ops + 1):
        choice = rng.random()
        if choice < 0.40:
            entity = Entity(
                next_eid,
                Rect.from_center(
                    rng.uniform(0.05, 0.95),
                    rng.uniform(0.05, 0.95),
                    rng.uniform(0.0, 0.08),
                    rng.uniform(0.0, 0.08),
                ).clamped(),
            )
            next_eid += 1
            await service.insert(entity)
            report.ops += 1
        elif choice < 0.65 and len(index) > entities // 2:
            victim = rng.choice(sorted(index.live_entities(), key=lambda e: e.eid))
            await service.delete(victim.eid)
            report.ops += 1
        elif choice < 0.80 and index.delta_records:
            try:
                if await service.compact():
                    report.compactions += 1
            except Exception as error:  # fault during compaction: loud
                report.failed_queries += 1
                note(f"step {step}: compaction failed loudly: {error}")
            report.ops += 1
        else:
            px, py = rng.uniform(0, 1), rng.uniform(0, 1)
            point = await service.point(px, py)
            state = service.breaker.state
            _tally(report, point.status)
            if point.status == "ok":
                brute = tuple(
                    sorted(
                        e.eid
                        for e in index.live_entities()
                        if e.mbr.contains_point(px, py)
                    )
                )
                if point.eids != brute:
                    report.violations.append(
                        ServiceViolation(
                            step,
                            "point",
                            point.epoch,
                            f"point result diverged from brute force: "
                            f"got {len(point.eids or ())}, "
                            f"expected {len(brute)}",
                        )
                    )
            else:
                _check_non_ok(report, step, "point", point, state)
            report.ops += 1
        await check_epoch(step)
        if faults and step % 10 == 0:
            # Give the breaker's reset clock room to half-open so the
            # recovery path (probe -> close) is actually exercised.
            await asyncio.sleep(config.breaker_reset_s)

    report.breaker_opened = service.breaker.opened_count
    if faults:
        if report.failed_queries == 0:
            report.violations.append(
                ServiceViolation(
                    ops, "faults", index.epoch,
                    "fault plan injected no loud failures",
                )
            )
        if report.breaker_opened == 0:
            report.violations.append(
                ServiceViolation(
                    ops, "faults", index.epoch,
                    "breaker never opened under the fault burst",
                )
            )
        if service.breaker.state is not BreakerState.CLOSED:
            # One last recovery drive: burn remaining probes.
            for _ in range(20):
                await asyncio.sleep(config.breaker_reset_s)
                outcome = await service.join()
                _tally(report, outcome.status)
                if outcome.status == "ok":
                    break
        final = await service.join()
        _tally(report, final.status)
        live = index.snapshot_dataset()
        oracle = spatial_join(live, live, algorithm="s3j").pairs
        report.join_checks += 1
        report.epochs_checked += 1
        if final.status != "ok" or final.pairs != oracle:
            report.violations.append(
                ServiceViolation(
                    ops, "recovery", index.epoch,
                    f"service did not recover to exact answers after the "
                    f"fault burst (final status {final.status!r})",
                )
            )
    index.close()
    note(
        f"service verify: {report.ops} ops, "
        f"{report.epochs_checked} epochs checked, "
        f"breaker opened {report.breaker_opened}x"
    )
    return report


def _tally(report: ServiceVerifyReport, status: str) -> None:
    if status == "ok":
        report.ok_queries += 1
    elif status == "failed":
        report.failed_queries += 1
    elif status == "partial":
        report.partial_queries += 1


def _check_non_ok(
    report: ServiceVerifyReport,
    step: int,
    op: str,
    outcome: Any,
    state: BreakerState,
) -> None:
    """A non-ok query must be loud or declared-partial-with-open-breaker."""
    if outcome.status == "failed":
        if not outcome.error:
            report.violations.append(
                ServiceViolation(
                    step, op, outcome.epoch,
                    "failed outcome carries no typed error (silent failure)",
                )
            )
    elif outcome.status == "partial":
        named = any(
            failure.error_type == "CircuitOpen" for failure in outcome.failures
        )
        if not named:
            report.violations.append(
                ServiceViolation(
                    step, op, outcome.epoch,
                    "partial outcome does not declare the open breaker",
                )
            )
        if state is BreakerState.CLOSED:
            report.violations.append(
                ServiceViolation(
                    step, op, outcome.epoch,
                    "partial result served while the breaker was closed",
                )
            )
    else:
        report.violations.append(
            ServiceViolation(
                step, op, outcome.epoch,
                f"unexpected query status {outcome.status!r}",
            )
        )
