"""Axis-aligned rectangles (Minimum Bounding Rectangles).

The paper describes every spatial entity by its MBR during the filter
step (section 2).  ``Rect`` is an immutable, closed, axis-aligned box in
normalized ``[0, 1]`` coordinates (the paper's "unit square").
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Rect:
    """A closed axis-aligned rectangle ``[xlo, xhi] x [ylo, yhi]``.

    Degenerate rectangles (points, horizontal/vertical segments) are
    allowed and common: point data sets have ``xlo == xhi`` and
    ``ylo == yhi``.
    """

    xlo: float
    ylo: float
    xhi: float
    yhi: float

    def __post_init__(self) -> None:
        if self.xlo > self.xhi or self.ylo > self.yhi:
            raise ValueError(
                f"malformed Rect: ({self.xlo}, {self.ylo}, {self.xhi}, {self.yhi})"
            )

    @classmethod
    def from_center(cls, cx: float, cy: float, width: float, height: float) -> Rect:
        """Build a rectangle from its center point and side lengths."""
        if width < 0 or height < 0:
            raise ValueError("width and height must be non-negative")
        return cls(cx - width / 2, cy - height / 2, cx + width / 2, cy + height / 2)

    @classmethod
    def point(cls, x: float, y: float) -> Rect:
        """A degenerate rectangle covering the single point ``(x, y)``."""
        return cls(x, y, x, y)

    @property
    def width(self) -> float:
        return self.xhi - self.xlo

    @property
    def height(self) -> float:
        return self.yhi - self.ylo

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        """Midpoint of the MBR — the point whose Hilbert value S3J sorts by."""
        return ((self.xlo + self.xhi) / 2, (self.ylo + self.yhi) / 2)

    def intersects(self, other: Rect) -> bool:
        """Closed-interval overlap test (boundary contact counts)."""
        return (
            self.xlo <= other.xhi
            and other.xlo <= self.xhi
            and self.ylo <= other.yhi
            and other.ylo <= self.yhi
        )

    def contains(self, other: Rect) -> bool:
        """True when ``other`` lies entirely inside this rectangle."""
        return (
            self.xlo <= other.xlo
            and self.ylo <= other.ylo
            and other.xhi <= self.xhi
            and other.yhi <= self.yhi
        )

    def contains_point(self, x: float, y: float) -> bool:
        """True when the point lies inside or on the boundary."""
        return self.xlo <= x <= self.xhi and self.ylo <= y <= self.yhi

    def intersection(self, other: Rect) -> Rect | None:
        """The overlapping region, or ``None`` when disjoint."""
        xlo = max(self.xlo, other.xlo)
        ylo = max(self.ylo, other.ylo)
        xhi = min(self.xhi, other.xhi)
        yhi = min(self.yhi, other.yhi)
        if xlo > xhi or ylo > yhi:
            return None
        return Rect(xlo, ylo, xhi, yhi)

    def union(self, other: Rect) -> Rect:
        """The smallest rectangle covering both operands.

        This is the MBR-expansion step SHJ performs when an entity is
        inserted into a partition (section 2.2).
        """
        return Rect(
            min(self.xlo, other.xlo),
            min(self.ylo, other.ylo),
            max(self.xhi, other.xhi),
            max(self.yhi, other.yhi),
        )

    def expanded(self, margin: float) -> Rect:
        """Grow every side outward by ``margin``.

        Used to evaluate *distance within epsilon* predicates on MBRs:
        ``a`` is within ``eps`` of ``b`` only if ``a.expanded(eps)``
        intersects ``b``.
        """
        if margin < 0:
            raise ValueError("margin must be non-negative")
        return Rect(
            self.xlo - margin, self.ylo - margin, self.xhi + margin, self.yhi + margin
        )

    def clamped(self, lo: float = 0.0, hi: float = 1.0) -> Rect:
        """Clip the rectangle to the square ``[lo, hi]^2``."""

        def clamp(v: float) -> float:
            return min(max(v, lo), hi)

        return Rect(clamp(self.xlo), clamp(self.ylo), clamp(self.xhi), clamp(self.yhi))

    def min_distance(self, other: Rect) -> float:
        """Euclidean distance between the closest points of two rectangles.

        Zero when the rectangles intersect.
        """
        dx = max(self.xlo - other.xhi, other.xlo - self.xhi, 0.0)
        dy = max(self.ylo - other.yhi, other.ylo - self.yhi, 0.0)
        return math.hypot(dx, dy)

    def as_tuple(self) -> tuple[float, float, float, float]:
        """The corners as ``(xlo, ylo, xhi, yhi)``."""
        return (self.xlo, self.ylo, self.xhi, self.yhi)


UNIT_SQUARE = Rect(0.0, 0.0, 1.0, 1.0)
"""The normalized data space every data set in the paper lives in."""
