"""Failure injection: the storage stack must fail loudly and stay
consistent when the backend misbehaves or inputs are malformed.

The flaky backend here is the shared :mod:`repro.faults` machinery
(``FaultPlan.failing_writes`` is the promoted form of the ad-hoc
``FlakyBackend`` this file used to define)."""

import pytest

from repro.faults import FaultInjectingBackend, FaultPlan
from repro.storage.backend import MemoryBackend
from repro.storage.buffer import BufferPool
from repro.storage.iostats import IOStats
from repro.storage.manager import StorageConfig, StorageManager
from repro.storage.pagedfile import PagedFile
from repro.storage.records import EntityDescriptorCodec


class TestBackendFailures:
    def make(self, fail_after):
        backend = FaultInjectingBackend(
            MemoryBackend(), FaultPlan.failing_writes(fail_after)
        )
        backend.create_file("f", EntityDescriptorCodec(), 4096)
        stats = IOStats()
        pool = BufferPool(backend, 2, stats)
        handle = PagedFile("f", EntityDescriptorCodec(), 4096, pool)
        return backend, pool, handle

    def test_write_failure_propagates_from_eviction(self):
        backend, pool, handle = self.make(fail_after=0)
        with pytest.raises(IOError, match="injected"):
            # Fill pages until an eviction forces the failing write.
            for i in range(400):
                handle.append((i, 0.0, 0.0, 0.0, 0.0, 0))

    def test_write_failure_propagates_from_flush(self):
        backend, pool, handle = self.make(fail_after=0)
        handle.append((1, 0.0, 0.0, 0.0, 0.0, 0))
        with pytest.raises(IOError, match="injected"):
            pool.flush()

    def test_reads_keep_working_after_failed_flush(self):
        backend, pool, handle = self.make(fail_after=1)
        handle.append((1, 0.0, 0.0, 0.0, 0.0, 0))
        pool.flush()  # first write succeeds
        assert list(handle.scan()) == [(1, 0.0, 0.0, 0.0, 0.0, 0)]

    def test_missing_page_read_is_loud(self):
        backend = MemoryBackend()
        backend.create_file("f", EntityDescriptorCodec(), 4096)
        pool = BufferPool(backend, 2, IOStats())
        with pytest.raises(ValueError, match="never written"):
            pool.fetch("f", 7)


class TestMalformedInput:
    def test_bad_record_rejected_by_codec(self):
        codec = EntityDescriptorCodec()
        with pytest.raises(Exception):
            codec.encode(("not-an-int", 0.0, 0.0, 0.0, 0.0, 0))

    def test_coordinates_outside_unit_square_rejected(self, storage):
        from repro.core.s3j import SizeSeparationSpatialJoin

        handle = storage.create_file("bad")
        handle.append((1, -0.5, 0.0, 0.5, 0.5, 0))  # xlo < 0
        other = storage.create_file("ok")
        other.append((2, 0.1, 0.1, 0.2, 0.2, 0))
        algo = SizeSeparationSpatialJoin(storage)
        with pytest.raises(ValueError):
            algo.join(handle, other)

    def test_nan_coordinates_rejected(self):
        from repro.geometry.rect import Rect

        nan = float("nan")
        # NaN violates xlo <= xhi in every comparison direction.
        rect = Rect(nan, 0.0, nan, 1.0)  # constructor can't catch NaN order
        from repro.filtertree.levels import LevelAssigner

        with pytest.raises(ValueError):
            LevelAssigner().level(rect)


class TestResourceLifecycle:
    def test_manager_close_idempotent(self):
        manager = StorageManager(StorageConfig(buffer_pages=4))
        manager.create_file("x").append((1, 0.0, 0.0, 0.0, 0.0, 0))
        manager.close()
        manager.close()  # second close must not raise

    def test_context_manager_flushes(self, tmp_path):
        config = StorageConfig(
            backend="disk", directory=str(tmp_path), buffer_pages=4
        )
        with StorageManager(config) as manager:
            manager.create_file("x").append((1, 0.0, 0.0, 0.0, 0.0, 0))
        # The page reached the file even though it was never explicitly
        # flushed.
        files = list(tmp_path.glob("*.pages"))
        assert files and files[0].stat().st_size > 0
