"""Tests for the cost-based join-method chooser."""

import pytest

from repro.costmodel.optimizer import (
    CatalogStats,
    PlanEstimate,
    choose_algorithm,
    estimate_plans,
)


class TestCatalogStats:
    def test_validation(self):
        with pytest.raises(ValueError):
            CatalogStats(pages=-1)
        with pytest.raises(ValueError):
            CatalogStats(pages=10, avg_side=1.5)


class TestEstimatePlans:
    def test_returns_all_three_sorted(self):
        a = CatalogStats(pages=1000, avg_side=0.005)
        b = CatalogStats(pages=1000, avg_side=0.005)
        plans = estimate_plans(a, b, memory_pages=100)
        assert {p.algorithm for p in plans} == {"s3j", "pbsm", "shj"}
        costs = [p.total_ios for p in plans]
        assert costs == sorted(costs)

    def test_memory_validation(self):
        a = CatalogStats(pages=10)
        with pytest.raises(ValueError):
            estimate_plans(a, a, memory_pages=1)

    def test_no_statistics_uses_worst_case(self):
        a = CatalogStats(pages=500)
        plans = {p.algorithm: p for p in estimate_plans(a, a, memory_pages=64)}
        assert any("worst-case" in note for note in plans["s3j"].notes)
        assert any("guessed" in note for note in plans["pbsm"].notes)
        assert any("guessed" in note for note in plans["shj"].notes)

    def test_statistics_remove_uncertainty_notes(self):
        a = CatalogStats(pages=500, avg_side=0.01, replication_hint=1.2)
        plans = {p.algorithm: p for p in estimate_plans(a, a, memory_pages=64)}
        assert plans["s3j"].notes == ()
        assert plans["pbsm"].notes == ()

    def test_high_replication_penalizes_baselines(self):
        a = CatalogStats(pages=500, avg_side=0.02)
        heavy = CatalogStats(pages=500, avg_side=0.02, replication_hint=8.0)
        light = CatalogStats(pages=500, avg_side=0.02, replication_hint=1.1)
        cost = lambda s: {  # noqa: E731
            p.algorithm: p.total_ios for p in estimate_plans(a, s, memory_pages=64)
        }
        assert cost(heavy)["pbsm"] > cost(light)["pbsm"]
        assert cost(heavy)["shj"] > cost(light)["shj"]
        assert cost(heavy)["s3j"] == cost(light)["s3j"]  # S3J is immune

    def test_blockwise_note_when_partitions_overflow(self):
        a = CatalogStats(pages=5000)
        b = CatalogStats(pages=5000, replication_hint=10.0)
        plans = {p.algorithm: p for p in estimate_plans(a, b, memory_pages=20)}
        assert any("blockwise" in note for note in plans["shj"].notes)


class TestChooseAlgorithm:
    def test_prefers_s3j_under_heavy_replication(self):
        a = CatalogStats(pages=1000, avg_side=0.05, replication_hint=6.0)
        b = CatalogStats(pages=1000, avg_side=0.05, replication_hint=6.0)
        assert choose_algorithm(a, b, memory_pages=100) == "s3j"

    def test_choice_matches_cheapest_estimate(self):
        a = CatalogStats(pages=800, avg_side=0.01)
        b = CatalogStats(pages=400, avg_side=0.02)
        plans = estimate_plans(a, b, memory_pages=64, result_pages=50)
        assert choose_algorithm(a, b, memory_pages=64, result_pages=50) == (
            plans[0].algorithm
        )

    def test_plan_estimate_is_frozen(self):
        plan = PlanEstimate("s3j", 100)
        with pytest.raises(AttributeError):
            plan.total_ios = 5
