"""E-T3 — regenerate Table 3: the evaluation data sets.

Prints name / type / size / coverage for all seven data sets and checks
the measured coverage against the paper's reported values.
"""

import pytest

from repro.datagen.paper import PAPER_COVERAGE, table3_rows


def test_table3_datasets(benchmark, repro_scale):
    rows = benchmark.pedantic(
        lambda: table3_rows(repro_scale), rounds=1, iterations=1
    )

    print(f"\n--- Table 3 (scale {repro_scale}) ---")
    print(f"{'Name':<6}{'Size':>9}{'Coverage':>10}{'Paper':>8}  Type")
    for row in rows:
        print(
            f"{row['name']:<6}{row['size']:>9,}{row['coverage']:>10.3f}"
            f"{row['paper_coverage']:>8}  {row['type']}"
        )

    by_name = {row["name"]: row for row in rows}
    for name in ("UN1", "UN2", "UN3", "TR"):
        assert by_name[name]["coverage"] == pytest.approx(
            PAPER_COVERAGE[name], rel=0.1
        )
    for name in ("LB", "MG"):
        assert by_name[name]["coverage"] == pytest.approx(
            PAPER_COVERAGE[name], rel=0.3
        )
    benchmark.extra_info["rows"] = rows
