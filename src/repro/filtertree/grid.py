"""Hierarchical grid helpers shared by DSB and the tiling algorithms."""

from __future__ import annotations

from typing import Iterator

from repro.geometry.rect import Rect


def cell_of_point(x: float, y: float, level: int) -> tuple[int, int]:
    """Grid coordinates of the level-``level`` cell containing a point."""
    side = 1 << level
    cx = min(int(x * side), side - 1)
    cy = min(int(y * side), side - 1)
    if not (0 <= cx < side and 0 <= cy < side):
        raise ValueError(f"point ({x}, {y}) outside the unit square")
    return cx, cy


def cells_overlapping(rect: Rect, level: int) -> Iterator[tuple[int, int]]:
    """All level-``level`` grid cells whose closed extent intersects the
    closed rectangle.

    This is the "determine all the partitions at level ``l`` that ``e``
    overlaps" computation of the DSB precise mode (section 3.2), and
    also PBSM's tile-overlap computation when tiles form a regular grid.
    """
    side = 1 << level
    clipped = rect.clamped()
    cx_lo = min(int(clipped.xlo * side), side - 1)
    cy_lo = min(int(clipped.ylo * side), side - 1)
    cx_hi = min(int(clipped.xhi * side), side - 1)
    cy_hi = min(int(clipped.yhi * side), side - 1)
    for cx in range(cx_lo, cx_hi + 1):
        for cy in range(cy_lo, cy_hi + 1):
            yield cx, cy


def cell_rect(cx: int, cy: int, level: int) -> Rect:
    """The extent of one level-``level`` grid cell."""
    side = 1 << level
    if not (0 <= cx < side and 0 <= cy < side):
        raise ValueError(f"cell ({cx}, {cy}) outside the 2^{level} grid")
    step = 1.0 / side
    return Rect(cx * step, cy * step, (cx + 1) * step, (cy + 1) * step)
