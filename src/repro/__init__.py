"""repro — Size Separation Spatial Join (S3J).

A complete, self-contained reproduction of:

    Nick Koudas and Kenneth C. Sevcik.
    "Size Separation Spatial Join". SIGMOD 1997.

The package implements the paper's contribution (S3J with Dynamic
Spatial Bitmaps), both evaluated baselines (PBSM and SHJ), and every
substrate they run on: a paged storage manager with an LRU buffer pool
and I/O accounting, external merge sort, plane sweep, an R-tree,
space-filling curves, the Filter-Tree level decomposition, the
analytic cost models of section 4, and the data generators of Table 3.

Quick start::

    from repro import spatial_join
    from repro.datagen import uniform_squares_by_coverage

    a = uniform_squares_by_coverage(20_000, 0.4, seed=1, name="A")
    b = uniform_squares_by_coverage(20_000, 0.9, seed=2, name="B")
    result = spatial_join(a, b, algorithm="s3j")
    print(len(result), "candidate pairs")
    print(result.metrics.describe())
"""

from repro.baselines import PartitionBasedSpatialMergeJoin, SpatialHashJoin
from repro.core import DynamicSpatialBitmap, SizeSeparationSpatialJoin
from repro.curves import GrayCurve, HilbertCurve, SpaceFillingCurve, ZOrderCurve
from repro.geometry import Entity, Point, Polygon, Rect, Segment
from repro.join import (
    Intersects,
    JoinMetrics,
    JoinResult,
    SpatialDataset,
    WithinDistance,
    available_algorithms,
    make_algorithm,
    spatial_join,
)
from repro.join.multiway import spatial_multiway_join
from repro.rtree import RTree
from repro.storage import StorageConfig, StorageManager

__version__ = "1.0.0"

__all__ = [
    "DynamicSpatialBitmap",
    "Entity",
    "GrayCurve",
    "HilbertCurve",
    "Intersects",
    "JoinMetrics",
    "JoinResult",
    "PartitionBasedSpatialMergeJoin",
    "Point",
    "Polygon",
    "RTree",
    "Rect",
    "Segment",
    "SizeSeparationSpatialJoin",
    "SpaceFillingCurve",
    "SpatialDataset",
    "SpatialHashJoin",
    "StorageConfig",
    "StorageManager",
    "WithinDistance",
    "ZOrderCurve",
    "available_algorithms",
    "make_algorithm",
    "spatial_join",
    "spatial_multiway_join",
    "__version__",
]
