"""Bounded, deterministic retries at the storage boundary.

:class:`RetryingBackend` sits between the buffer pool and the physical
backend (the :class:`~repro.storage.manager.StorageManager` installs it
when its config carries a :class:`RetryPolicy`) and transparently
re-issues operations that raised
:class:`~repro.faults.errors.TransientIOError`:

- attempts are bounded (``max_attempts`` including the first try);
- backoff is exponential with *deterministic* jitter — a hash of
  ``(seed, operation token, attempt)`` — so a rerun of the same fault
  scenario backs off identically;
- backoff time is **simulated**, never slept: it accumulates on
  :attr:`RetryingBackend.simulated_backoff_s` and is exported as the
  ``faults.backoff_s`` histogram, keeping tests and chaos sweeps fast;
- permanent faults (:class:`PermanentIOError`, including torn-write
  detections) pass straight through;
- exhausting the budget raises
  :class:`~repro.faults.errors.RetriesExhaustedError` chained to the
  last transient fault.

Observability: each retry bumps ``faults.retries_attempted`` and emits
a ``retry:<op>`` span event; a recovery bumps
``faults.retries_succeeded``; a give-up bumps ``faults.giveups``.  On
the fault-free path the wrapper adds *nothing* — no counter, no span,
no ledger entry — which is what makes the retry-layer parity gate hold
byte-for-byte.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.faults.errors import RetriesExhaustedError, TransientIOError
from repro.obs import NULL_OBS, Observability
from repro.storage.backend import Record, StorageBackend
from repro.storage.records import RecordCodec

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with exponential backoff and seeded jitter."""

    max_attempts: int = 3
    base_backoff_s: float = 0.005
    multiplier: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_backoff_s < 0:
            raise ValueError("base_backoff_s must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff_s(self, attempt: int, token: str) -> float:
        """Simulated backoff before retry number ``attempt`` (1-based:
        the wait after the first failure is ``backoff_s(1, ...)``)."""
        base = self.base_backoff_s * self.multiplier ** (attempt - 1)
        if not self.jitter:
            return base
        digest = hashlib.blake2b(
            f"{self.seed}:{token}:{attempt}".encode(), digest_size=8
        ).digest()
        fraction = int.from_bytes(digest, "big") / 2**64
        return base * (1.0 + self.jitter * fraction)


class RetryingBackend(StorageBackend):
    """Wrap a backend, absorbing transient faults per a retry policy."""

    def __init__(
        self,
        inner: StorageBackend,
        policy: RetryPolicy,
        obs: Observability | None = None,
    ) -> None:
        self.inner = inner
        self.policy = policy
        self.obs = obs if obs is not None else NULL_OBS
        self.simulated_backoff_s = 0.0

    def _call(self, op: str, token: str, fn: Callable[[], T]) -> T:
        attempt = 1
        metrics = self.obs.active_metrics
        while True:
            try:
                result = fn()
            except TransientIOError as error:
                if attempt >= self.policy.max_attempts:
                    if metrics is not None:
                        metrics.count("faults.giveups", op=op)
                    raise RetriesExhaustedError(
                        f"gave up on {op} {token} after {attempt} "
                        f"attempt(s): {error}"
                    ) from error
                backoff = self.policy.backoff_s(attempt, token)
                self.simulated_backoff_s += backoff
                if metrics is not None:
                    metrics.count("faults.retries_attempted", op=op)
                    metrics.observe("faults.backoff_s", backoff)
                if self.obs.tracer.enabled:
                    with self.obs.tracer.span(
                        f"retry:{op}",
                        kind="fault",
                        token=token,
                        attempt=attempt,
                        backoff_s=backoff,
                        error=str(error),
                    ):
                        pass
                attempt += 1
                continue
            if attempt > 1 and metrics is not None:
                metrics.count("faults.retries_succeeded", op=op)
            return result

    # -- StorageBackend -------------------------------------------------

    def create_file(self, name: str, codec: RecordCodec, page_size: int) -> None:
        self.inner.create_file(name, codec, page_size)

    def delete_file(self, name: str) -> None:
        self.inner.delete_file(name)

    def rename_file(self, old: str, new: str) -> None:
        self._call(
            "rename", f"{old}->{new}", lambda: self.inner.rename_file(old, new)
        )

    def read_page(self, name: str, page_no: int) -> list[Record]:
        return self._call(
            "read",
            f"{name}:{page_no}",
            lambda: self.inner.read_page(name, page_no),
        )

    def write_page(self, name: str, page_no: int, records: list[Record]) -> None:
        self._call(
            "write",
            f"{name}:{page_no}",
            lambda: self.inner.write_page(name, page_no, records),
        )

    def sync(self) -> None:
        self.inner.sync()

    def close(self) -> None:
        self.inner.close()
