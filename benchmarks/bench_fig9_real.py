"""E-F9a / E-F9b — figures 9a and 9b: joins of the road-segment data
sets with their shifted copies (LB x LB', MG x MG')."""

import pytest

from repro.experiments.workloads import workload_by_name

from benchmarks.conftest import cached_workload_row, print_phase_breakdown


@pytest.mark.parametrize("name", ["LB-LB'", "MG-MG'"])
def test_fig9_road_join(benchmark, name, repro_scale):
    workload = workload_by_name(name)
    row = benchmark.pedantic(
        lambda: cached_workload_row(workload, repro_scale), rounds=1, iterations=1
    )

    rows = [row["s3j"], row["pbsm_small"], row["pbsm_large"], row["shj"]]
    print_phase_breakdown(f"Figure {workload.figure}: {name}", rows)

    # Section 5.2.1: "PBSM's performance is worse with more tiles due
    # to increased replication" on the road data.
    small, large = row["pbsm_small"], row["pbsm_large"]
    assert large["r_A"] + large["r_B"] >= small["r_A"] + small["r_B"]
    # Both baselines replicate; S3J does not.
    assert small["r_A"] > 1.0
    assert row["shj"]["r_B"] > 1.0
    assert row["s3j"]["r_A"] == 1.0
    # S3J wins on the road workloads (paper: factors 1.3 - 2.3).
    assert small["normalized"] >= 1.0
    assert row["shj"]["normalized"] >= 0.9
    benchmark.extra_info["rows"] = rows
