"""Executors: one runnable configuration of one join algorithm.

An :class:`ExecutorSpec` names an algorithm from the registry plus the
knobs the harness varies (worker count, shard level, constructor
parameters).  :func:`run_executor` executes a spec on a
:class:`~repro.verify.cases.VerifyCase` and captures everything the
invariant checkers need alongside the pair set: the full ledger totals,
the per-phase metrics, the observability registry, and the page counts
of S3J's sorted level files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.join.api import available_algorithms, default_storage_config, spatial_join
from repro.join.metrics import JoinMetrics
from repro.join.result import Pair
from repro.obs import Observability
from repro.storage.iostats import PhaseStats
from repro.storage.manager import StorageManager
from repro.verify.cases import VerifyCase

SORTED_FILE_SUFFIX = "-sorted"


@dataclass(frozen=True)
class ExecutorSpec:
    """One algorithm configuration under test.

    ``mode`` selects the execution engine (``"ledger"`` or
    ``"memory"``, see :func:`~repro.join.api.spatial_join`); memory-
    mode records carry no live ledger or level files, so the
    storage-level invariants skip them by construction.
    """

    algorithm: str
    workers: int = 1
    shard_level: int | None = None
    planner: str | None = None  # sharded runs only; None = default
    params: tuple[tuple[str, Any], ...] = ()
    label: str | None = None
    mode: str = "ledger"

    @property
    def name(self) -> str:
        if self.label:
            return self.label
        name = self.algorithm
        if self.mode != "ledger":
            name = f"{name}:{self.mode}"
        if self.workers != 1 or self.shard_level is not None:
            name = f"{name}@{self.workers}w"
        if self.planner is not None:
            name = f"{name}:{self.planner}"
        return name

    @property
    def sharded(self) -> bool:
        return self.workers != 1 or self.shard_level is not None


@dataclass
class RunRecord:
    """Everything captured about one executor run on one case."""

    spec: ExecutorSpec
    case: VerifyCase
    transform_name: str
    pairs: frozenset[Pair]
    metrics: JoinMetrics
    ledger_total: PhaseStats | None = None  # serial runs only
    registry: Any | None = None  # MetricsRegistry of instrumented runs
    level_file_pages: dict[str, int] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.spec.name


def default_executors(
    algorithms: tuple[str, ...] | None = None,
    worker_counts: tuple[int, ...] = (2,),
    sharded_algorithms: tuple[str, ...] = ("s3j",),
    memory_mode: bool = True,
) -> list[ExecutorSpec]:
    """The default roster: every registered algorithm serially, plus
    sharded runs of ``sharded_algorithms`` at each worker count (under
    the default two-layer planner *and* the legacy residual planner, so
    the planners must agree with each other and everything else), plus
    (when ``memory_mode`` and s3j is in the roster) the in-memory fast
    path serially and at each worker count."""
    names = algorithms or available_algorithms()
    unknown = set(names) - set(available_algorithms())
    if unknown:
        raise ValueError(
            f"unknown algorithms {sorted(unknown)}; "
            f"choose from {available_algorithms()}"
        )
    specs = [ExecutorSpec(algorithm=name) for name in names]
    for name in sharded_algorithms:
        if name not in names:
            continue
        for workers in worker_counts:
            if workers == 1:
                continue
            specs.append(ExecutorSpec(algorithm=name, workers=workers))
            # The legacy planner stays on the roster so planner-to-
            # planner parity is itself a differential gate.
            specs.append(
                ExecutorSpec(algorithm=name, workers=workers, planner="residual")
            )
    if memory_mode and "s3j" in names:
        specs.append(ExecutorSpec(algorithm="s3j", mode="memory"))
        for workers in worker_counts:
            if workers == 1:
                continue
            specs.append(
                ExecutorSpec(algorithm="s3j", workers=workers, mode="memory")
            )
    return specs


def run_executor(
    case: VerifyCase,
    spec: ExecutorSpec,
    overrides: dict[str, Any] | None = None,
    instrument: bool = True,
) -> RunRecord:
    """Run one executor on one case and capture its evidence.

    Serial runs build their own :class:`StorageManager` so the live
    ledger totals and the sorted level files can be inspected before
    the storage is torn down; sharded runs go through the parallel
    executor (per-shard storage) and capture metrics only.
    """
    params = dict(spec.params)
    if overrides:
        params.update(overrides)

    if spec.sharded:
        obs = Observability() if instrument else None
        result = spatial_join(
            case.dataset_a,
            case.dataset_b,
            algorithm=spec.algorithm,
            predicate=case.predicate,
            obs=obs,
            workers=spec.workers,
            shard_level=spec.shard_level,
            planner=spec.planner,
            mode=spec.mode,
            **params,
        )
        return RunRecord(
            spec=spec,
            case=case,
            transform_name="",
            pairs=result.pairs,
            metrics=result.metrics,
            registry=obs.metrics if obs is not None else None,
        )

    if spec.mode == "memory":
        # No storage exists in memory mode: there is no live ledger to
        # snapshot and no level files to page-count, so the record
        # carries pair set + metrics only (the storage invariants skip).
        obs = Observability() if instrument else None
        result = spatial_join(
            case.dataset_a,
            case.dataset_b,
            algorithm=spec.algorithm,
            predicate=case.predicate,
            obs=obs,
            mode=spec.mode,
            **params,
        )
        return RunRecord(
            spec=spec,
            case=case,
            transform_name="",
            pairs=result.pairs,
            metrics=result.metrics,
            registry=obs.metrics if obs is not None else None,
        )

    obs = Observability() if instrument else None
    manager = StorageManager(
        default_storage_config(case.dataset_a, case.dataset_b), obs=obs
    )
    try:
        result = spatial_join(
            case.dataset_a,
            case.dataset_b,
            algorithm=spec.algorithm,
            predicate=case.predicate,
            storage=manager,
            **params,
        )
        total = manager.stats.snapshot()
        level_file_pages = {
            name: manager.open_file(name).num_pages
            for name in manager.list_files()
            if name.endswith(SORTED_FILE_SUFFIX)
        }
    finally:
        manager.close()
    return RunRecord(
        spec=spec,
        case=case,
        transform_name="",
        pairs=result.pairs,
        metrics=result.metrics,
        ledger_total=total,
        registry=obs.metrics if obs is not None else None,
        level_file_pages=level_file_pages,
    )
