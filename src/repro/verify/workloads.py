"""The verification workload catalog.

Generated workloads target the semantics the algorithms must agree on
— uniform overlap, grid-aligned boundary contact, size mixes spanning
many Filter-Tree levels, and degenerate (zero-area) geometry — while
the paper workloads re-use the Table 3 catalog at a tiny scale so the
harness also covers the exact inputs the experiments run.
"""

from __future__ import annotations

from repro.datagen.triangular import triangular_squares
from repro.datagen.uniform import uniform_squares
from repro.geometry.entity import Entity
from repro.geometry.rect import Rect
from repro.join.dataset import SpatialDataset
from repro.join.predicates import WithinDistance
from repro.verify.cases import VerifyCase

PAPER_SCALE = 0.005
"""Scale for the paper workloads: Table 3 sizes collapse to their
100-entity floor, small enough for quadratic oracles and shrinking."""


def grid_aligned_dataset(
    grid: int, count: int, seed: int, name: str
) -> SpatialDataset:
    """Rectangles whose corners all lie on the ``1/grid`` lattice.

    Every MBR touches grid lines by construction, many share edges or
    corners with their neighbors, and a fraction are degenerate
    (zero-width, zero-height, or single points) — the closed-interval
    boundary cases that separate correct quantization from off-by-one
    quantization.
    """
    import random

    rng = random.Random(seed)
    entities = []
    for eid in range(count):
        xlo = rng.randrange(grid) / grid
        ylo = rng.randrange(grid) / grid
        xhi = min(1.0, xlo + rng.randrange(0, 3) / grid)
        yhi = min(1.0, ylo + rng.randrange(0, 3) / grid)
        entities.append(Entity(eid, Rect(xlo, ylo, xhi, yhi)))
    return SpatialDataset(
        name, entities, description=f"{count} rects on the 1/{grid} lattice"
    )


def degenerate_dataset(grid: int, count: int, seed: int, name: str) -> SpatialDataset:
    """Points and axis-parallel segments lying *on* grid lines."""
    import random

    rng = random.Random(seed)
    entities = []
    for eid in range(count):
        x = rng.randrange(grid + 1) / grid
        y = rng.randrange(grid + 1) / grid
        kind = eid % 3
        if kind == 0:  # point
            box = Rect(x, y, x, y)
        elif kind == 1:  # horizontal segment along a grid line
            xhi = min(1.0, x + rng.randrange(1, 3) / grid)
            box = Rect(x, y, xhi, y)
        else:  # vertical segment along a grid line
            yhi = min(1.0, y + rng.randrange(1, 3) / grid)
            box = Rect(x, y, x, yhi)
        entities.append(Entity(eid, box))
    return SpatialDataset(
        name, entities, description=f"{count} degenerate shapes on the 1/{grid} grid"
    )


def generated_cases(seed: int = 0) -> list[VerifyCase]:
    """The generated workloads, deterministic in ``seed``."""
    uniform_a = uniform_squares(140, 0.02, seed=seed + 1, name="UNI-A")
    uniform_b = uniform_squares(170, 0.03, seed=seed + 2, name="UNI-B")
    aligned_a = grid_aligned_dataset(8, 110, seed=seed + 3, name="GRID-A")
    aligned_b = grid_aligned_dataset(16, 130, seed=seed + 4, name="GRID-B")
    mixed = triangular_squares(
        160, l_min=1.0, l_mode=5.0, l_max=9.0, seed=seed + 5, name="MIX"
    )
    degenerate = degenerate_dataset(8, 120, seed=seed + 6, name="DEGEN")
    return [
        VerifyCase("uniform", uniform_a, uniform_b),
        VerifyCase("grid-aligned", aligned_a, aligned_b),
        VerifyCase("mixed-self", mixed, mixed),
        VerifyCase(
            "degenerate-self",
            degenerate,
            degenerate,
            predicate=WithinDistance(1e-3),
        ),
    ]


def paper_cases(scale: float = PAPER_SCALE) -> list[VerifyCase]:
    """Two paper workloads (Table 4 rows) at verification scale: a
    non-self uniform join and the CFD within-distance self join."""
    from repro.experiments.workloads import workload_by_name

    cases = []
    for name in ("UN1-UN2", "CFD"):
        workload = workload_by_name(name)
        dataset_a, dataset_b = workload.datasets(scale)
        cases.append(
            VerifyCase(
                f"paper:{name}",
                dataset_a,
                dataset_b,
                predicate=workload.predicate(),
                source="paper",
            )
        )
    return cases


def default_cases(quick: bool = True, seed: int = 0) -> list[VerifyCase]:
    """The harness's workload roster.

    Quick mode keeps the three fastest generated workloads; full mode
    adds the degenerate self join and the paper workloads.
    """
    generated = generated_cases(seed)
    if quick:
        return generated[:3]
    return generated + paper_cases()


def cases_by_name(names: tuple[str, ...], seed: int = 0) -> list[VerifyCase]:
    """Select workloads by name from the full catalog."""
    catalog = {case.name: case for case in generated_cases(seed) + paper_cases()}
    unknown = set(names) - set(catalog)
    if unknown:
        raise ValueError(
            f"unknown workloads {sorted(unknown)}; choose from {sorted(catalog)}"
        )
    return [catalog[name] for name in names]
