"""repro.obs — the observability subsystem.

Three pieces (see DESIGN.md section 8):

- :class:`Tracer` — nested spans (phase → sub-step) capturing wall-
  clock, process-CPU, and simulated seconds; exportable as JSONL and
  Chrome trace-event JSON (``chrome://tracing``).
- :class:`MetricsRegistry` — named counters/gauges/histograms fed by
  hooks in the buffer pool, the I/O ledger, paged files, the
  synchronized scan, the DSB, and the external sorter.
- :class:`RunReport` — a machine-readable bundle of one run's
  :class:`~repro.join.metrics.JoinMetrics`, metric series, and span
  tree, with JSON round-tripping.

An :class:`Observability` object carries one tracer plus one registry
and is threaded through :class:`~repro.storage.manager.StorageManager`.
The default is :data:`NULL_OBS` (no-op tracer and registry): an
uninstrumented run allocates nothing and — by construction, verified by
the parity tests — records the exact same simulated ledger as an
instrumented one.

Typical use::

    from repro.obs import Observability
    obs = Observability()                  # enabled tracer + registry
    result = spatial_join(a, b, obs=obs)
    report = build_run_report(result, obs)
    report.save("run.json")
"""

from __future__ import annotations

from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EVENT_TYPES,
    NULL_EVENTS,
    BufferedEventSink,
    EventLog,
    EventSink,
    events_from_jsonl,
    progress_emitter,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    series_key,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer
from repro.obs.report import (
    TABLE2_PHASES,
    RunReport,
    build_run_report,
    phase_wall_times,
)
from repro.obs.straggler import StragglerAnalytics, analyze_events


class Observability:
    """One run's tracer, metrics registry, and event sink.

    ``Observability()`` builds an enabled tracer and registry; pass
    explicit instances to mix (e.g. tracing without metrics).  The
    event sink defaults to :data:`NULL_EVENTS` — opt into the event
    stream with ``Observability(events=EventLog())`` (see
    :mod:`repro.obs.events`).
    """

    __slots__ = ("tracer", "metrics", "events")

    def __init__(
        self,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        events: EventSink | None = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events if events is not None else NULL_EVENTS

    @property
    def enabled(self) -> bool:
        return (
            self.tracer.enabled or self.metrics.enabled or self.events.enabled
        )

    @property
    def active_metrics(self) -> MetricsRegistry | None:
        """The registry when enabled, else None — the convention the
        low-level hooks use to skip instrumentation entirely."""
        return self.metrics if self.metrics.enabled else None

    @classmethod
    def disabled(cls) -> Observability:
        """A fresh all-disabled instance (prefer :data:`NULL_OBS`)."""
        return cls(
            tracer=NullTracer(), metrics=NullMetricsRegistry(), events=EventSink()
        )


NULL_OBS = Observability(
    tracer=NULL_TRACER, metrics=NULL_METRICS, events=NULL_EVENTS
)
"""The shared no-op observability object (safe: it stores nothing)."""

__all__ = [
    "BufferedEventSink",
    "EVENT_SCHEMA_VERSION",
    "EVENT_TYPES",
    "EventLog",
    "EventSink",
    "Histogram",
    "MetricsRegistry",
    "NULL_EVENTS",
    "NULL_METRICS",
    "NULL_OBS",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullTracer",
    "Observability",
    "RunReport",
    "Span",
    "StragglerAnalytics",
    "TABLE2_PHASES",
    "Tracer",
    "analyze_events",
    "build_run_report",
    "events_from_jsonl",
    "phase_wall_times",
    "progress_emitter",
    "series_key",
]
