"""repro.verify — the differential correctness harness.

Three layers (see DESIGN.md section 10):

- **oracle + differential** — a brute-force all-pairs oracle and a
  runner that executes every registered algorithm (serial and sharded)
  against it, shrinking any divergence to a minimized counterexample;
- **metamorphic** — result-preserving input transforms (axis swap,
  reflection, A/B swap, Hilbert→Z-order, grid snapping) that multiply
  each workload into a family of cross-checks;
- **invariants** — pluggable ledger checkers (phase buckets sum to
  totals, S3J's join phase reads each sorted page once, replication
  factors match the paper's claims, obs-on/off ledger parity).

Plus **chaos** (:mod:`repro.verify.chaos`): the harness rerun under
sampled fault plans, asserting every run ends as a correct result, a
clean typed failure, or a declared partial result — never a silent
wrong answer (DESIGN.md section 11).

Typical use::

    from repro.verify import run_verify
    report = run_verify(quick=True)
    print(report.summary())
    assert report.ok
"""

from repro.verify.cases import VerifyCase
from repro.verify.chaos import (
    CHAOS_ALGORITHMS,
    ChaosOutcome,
    ChaosReport,
    ChaosScenario,
    run_chaos,
    run_chaos_case,
    sample_scenario,
)
from repro.verify.crash import (
    CrashCaseResult,
    CrashVerifyReport,
    run_crash_case,
    run_crash_verify,
    run_serve_roundtrip,
)
from repro.verify.crossmode import (
    CrossModeMismatch,
    CrossModeReport,
    run_cross_mode,
)
from repro.verify.differential import (
    Counterexample,
    Divergence,
    PairDiff,
    diff_pairs,
    minimize_counterexample,
)
from repro.verify.executors import (
    ExecutorSpec,
    RunRecord,
    default_executors,
    run_executor,
)
from repro.verify.harness import (
    VerifyReport,
    check_partition_conformance,
    run_verify,
)
from repro.verify.invariants import (
    DEFAULT_INVARIANTS,
    Invariant,
    InvariantViolation,
    JoinReadsOnceInvariant,
    PhaseBucketsSumInvariant,
    ReplicationInvariant,
    check_obs_parity,
)
from repro.verify.metamorphic import (
    FULL_TRANSFORMS,
    QUICK_TRANSFORMS,
    TRANSFORMS,
    Transform,
    transforms_by_name,
)
from repro.verify.oracle import descriptor_boxes, oracle_for_case, oracle_pairs
from repro.verify.service import (
    ServiceVerifyReport,
    ServiceViolation,
    run_service_verify,
)
from repro.verify.service_chaos import (
    ServiceChaosOutcome,
    ServiceChaosReport,
    ServiceChaosScenario,
    run_service_chaos,
    sample_service_scenario,
)
from repro.verify.workloads import cases_by_name, default_cases

__all__ = [
    "CHAOS_ALGORITHMS",
    "ChaosOutcome",
    "ChaosReport",
    "ChaosScenario",
    "Counterexample",
    "CrashCaseResult",
    "CrashVerifyReport",
    "CrossModeMismatch",
    "CrossModeReport",
    "DEFAULT_INVARIANTS",
    "Divergence",
    "ExecutorSpec",
    "FULL_TRANSFORMS",
    "Invariant",
    "InvariantViolation",
    "JoinReadsOnceInvariant",
    "PairDiff",
    "PhaseBucketsSumInvariant",
    "QUICK_TRANSFORMS",
    "ReplicationInvariant",
    "RunRecord",
    "ServiceChaosOutcome",
    "ServiceChaosReport",
    "ServiceChaosScenario",
    "ServiceVerifyReport",
    "ServiceViolation",
    "TRANSFORMS",
    "Transform",
    "VerifyCase",
    "VerifyReport",
    "cases_by_name",
    "check_obs_parity",
    "check_partition_conformance",
    "default_cases",
    "default_executors",
    "descriptor_boxes",
    "diff_pairs",
    "minimize_counterexample",
    "oracle_for_case",
    "oracle_pairs",
    "run_chaos",
    "run_chaos_case",
    "run_crash_case",
    "run_crash_verify",
    "run_cross_mode",
    "run_executor",
    "run_serve_roundtrip",
    "run_service_chaos",
    "run_service_verify",
    "run_verify",
    "sample_scenario",
    "sample_service_scenario",
    "transforms_by_name",
]
