"""Columnar datasets: the in-memory layout of the fast path.

One :class:`ColumnarDataset` holds everything the memory-mode join
needs about one input as parallel NumPy arrays — entity id, filter-step
MBR corners, Filter-Tree level, and the Hilbert key of the MBR center —
built **once** per input with the PR 1 batched kernels
(:meth:`~repro.filtertree.levels.LevelAssigner.levels`,
:meth:`~repro.curves.base.SpaceFillingCurve.keys`) and never touched by
a PagedFile or BufferPool.

The boxes are exactly the descriptor boxes of the ledger path: each
entity's MBR expanded by the predicate margin per side and clamped to
the unit square, so the two execution modes filter identical geometry
and their pair sets can be compared byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.curves.base import SpaceFillingCurve
from repro.curves.hilbert import HilbertCurve
from repro.filtertree.levels import LevelAssigner
from repro.join.dataset import SpatialDataset


def _quantize(coords: np.ndarray, side: int) -> np.ndarray:
    """Vectorized truncate-to-grid with the top edge clamped (the same
    expression as :meth:`SpaceFillingCurve.quantize`)."""
    if coords.size and (coords.min() < 0.0 or coords.max() > 1.0):
        raise ValueError("coordinate outside the unit square")
    return np.minimum((coords * side).astype(np.int64), side - 1)


@dataclass(frozen=True)
class ColumnarDataset:
    """One join input as parallel columns (struct-of-arrays).

    All arrays share one length; ``level`` is capped at the assigner's
    ``max_level`` and ``key`` is the Hilbert key of the (expanded) MBR
    center at full curve order — the level-``l`` cell containing the
    box is its top ``2*l`` bits (the curve's prefix property).
    """

    name: str
    eid: np.ndarray  # int64
    xlo: np.ndarray  # float64
    ylo: np.ndarray
    xhi: np.ndarray
    yhi: np.ndarray
    level: np.ndarray  # int64, in [0, max_level]
    key: np.ndarray  # int64 Hilbert center keys
    order: int

    def __len__(self) -> int:
        return len(self.eid)

    @classmethod
    def from_dataset(
        cls,
        dataset: SpatialDataset,
        margin: float = 0.0,
        curve: SpaceFillingCurve | None = None,
        assigner: LevelAssigner | None = None,
    ) -> ColumnarDataset:
        """Build the columns from a :class:`SpatialDataset`.

        ``margin`` is the predicate's MBR margin; expansion and clamping
        use the exact expressions of
        :meth:`SpatialDataset.write_descriptors`, so memory mode and
        ledger mode classify identical boxes.
        """
        curve = curve or HilbertCurve()
        assigner = assigner or LevelAssigner(
            order=curve.order, max_level=min(16, curve.order)
        )
        n = len(dataset)
        eid = np.empty(n, dtype=np.int64)
        boxes = np.empty((n, 4), dtype=np.float64)
        for row, entity in enumerate(dataset):
            box = (
                entity.mbr
                if margin == 0.0
                else entity.mbr.expanded(margin).clamped()
            )
            eid[row] = entity.eid
            boxes[row] = (box.xlo, box.ylo, box.xhi, box.yhi)
        xlo, ylo, xhi, yhi = boxes.T
        if n:
            level = assigner.levels(xlo, ylo, xhi, yhi)
            qx = _quantize((xlo + xhi) / 2, curve.side)
            qy = _quantize((ylo + yhi) / 2, curve.side)
            key = curve.keys(qx, qy)
        else:
            level = np.empty(0, dtype=np.int64)
            key = np.empty(0, dtype=np.int64)
        return cls(
            name=dataset.name,
            eid=eid,
            xlo=np.ascontiguousarray(xlo),
            ylo=np.ascontiguousarray(ylo),
            xhi=np.ascontiguousarray(xhi),
            yhi=np.ascontiguousarray(yhi),
            level=level,
            key=key,
            order=curve.order,
        )
