"""Chaos verification gates.

Three layers: a hypothesis suite driving randomly sampled fault
scenarios through the trichotomy check, the 200-case chaos gate (zero
silent wrong answers), and the retry-layer byte-parity gate over the
real CLI (``repro join --report`` with and without ``--retry-*`` must
serialize identically when no fault fires, for 1 and 2 workers).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.verify.chaos import (
    GOOD_OUTCOMES,
    run_chaos,
    run_chaos_case,
    sample_scenario,
    _shrunk_cases,
)

_ROSTERS = {}


def roster(seed):
    """Chaos workloads are deterministic per seed; build each once."""
    if seed not in _ROSTERS:
        _ROSTERS[seed] = _shrunk_cases(seed)
    return _ROSTERS[seed]


class TestScenarioSampling:
    def test_sampling_is_deterministic(self):
        first = sample_scenario(7, seed=3, cases=roster(3))
        second = sample_scenario(7, seed=3, cases=roster(3))
        assert first.plan == second.plan
        assert first.retry == second.retry
        assert first.describe() == second.describe()

    def test_indices_vary_the_scenario(self):
        plans = {
            sample_scenario(i, seed=0, cases=roster(0)).plan for i in range(12)
        }
        assert len(plans) > 6  # the sweep genuinely explores

    def test_every_fourth_case_is_sharded(self):
        scenarios = [
            sample_scenario(i, seed=0, cases=roster(0)) for i in range(8)
        ]
        assert [s.sharded for s in scenarios] == [
            False, False, False, True, False, False, False, True,
        ]


class TestTrichotomy:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(index=st.integers(min_value=0, max_value=2_000), seed=st.integers(0, 3))
    def test_sampled_scenarios_never_answer_wrong(self, index, seed):
        """The trichotomy and the retry-metric invariants, under
        arbitrary sampled fault plans."""
        scenario = sample_scenario(index, seed=seed, cases=roster(seed))
        outcome = run_chaos_case(scenario)
        assert outcome.outcome in GOOD_OUTCOMES, (
            f"{scenario.describe()} ended as {outcome.outcome}: "
            f"{outcome.detail}"
        )
        assert outcome.violations == (), scenario.describe()
        assert outcome.ok

    def test_chaos_gate_200_cases(self):
        """The acceptance gate: 200 seeded scenarios, zero silent wrong
        answers, and all three trichotomy arms actually visited."""
        report = run_chaos(cases=200, seed=0)
        assert report.ok, report.summary()
        tally = report.tally()
        assert tally.get("wrong", 0) == 0
        assert tally.get("untyped-error", 0) == 0
        assert tally.get("correct", 0) > 0
        assert tally.get("typed-failure", 0) > 0
        assert tally.get("partial", 0) > 0

    def test_report_serializes(self):
        report = run_chaos(cases=3, seed=1)
        data = json.loads(json.dumps(report.to_dict()))
        assert data["cases"] == 3
        assert "no silent wrong answers" in report.summary() or not report.ok


TIMING_KEYS = {
    "wall_s",
    "cpu_s",
    "start_s",
    "wall_seconds",
    "phase_wall",
    "elapsed",
    "generated_at",
    "timestamp",
    # The event stream and its straggler analytics are real-clock
    # artifacts by nature (timestamps, rate-limited heartbeat counts,
    # duration percentiles); parity over them is covered by the
    # ledger/metrics gates in tests/test_straggler.py.
    "events",
    "analytics",
}


def normalized(data):
    """Strip real-clock fields; everything left must be deterministic."""
    if isinstance(data, dict):
        return {
            key: normalized(value)
            for key, value in data.items()
            if key not in TIMING_KEYS
        }
    if isinstance(data, list):
        return [normalized(item) for item in data]
    return data


def cli_report(tmp_path: Path, tag: str, *extra: str) -> dict:
    """Run ``repro join --report`` in a fresh interpreter (fresh process
    = fresh file-label counters, which keeps runs comparable)."""
    path = tmp_path / f"{tag}.json"
    subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "join",
            "--workload",
            "UN1-UN2",
            "--scale",
            "0.05",
            "--report",
            str(path),
            *extra,
        ],
        check=True,
        capture_output=True,
        cwd=Path(__file__).resolve().parent.parent,
        env={**os.environ, "PYTHONPATH": "src"},
        timeout=300,
    )
    return json.loads(path.read_text())


@pytest.mark.slow
class TestRetryParityGate:
    """Retry layer + zero faults must not change one serialized byte."""

    def test_workers_1(self, tmp_path):
        plain = cli_report(tmp_path, "w1-plain")
        layered = cli_report(
            tmp_path, "w1-retry", "--retry-attempts", "4", "--retry-backoff", "0.01"
        )
        assert normalized(plain) == normalized(layered)

    def test_workers_2(self, tmp_path):
        plain = cli_report(tmp_path, "w2-plain", "--workers", "2")
        layered = cli_report(
            tmp_path, "w2-retry", "--workers", "2", "--retry-attempts", "4"
        )
        assert normalized(plain) == normalized(layered)

    def test_chaos_cli_smoke(self, tmp_path):
        """The CI chaos-smoke invocation stays green end to end."""
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "verify",
                "--chaos",
                "--seed",
                "0",
                "--cases",
                "3",
                "--json",
            ],
            capture_output=True,
            text=True,
            cwd=Path(__file__).resolve().parent.parent,
            env={**os.environ, "PYTHONPATH": "src"},
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        report = json.loads(proc.stdout)
        assert report["ok"] is True
        assert report["cases"] == 3
