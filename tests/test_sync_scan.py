"""Tests for the synchronized scan (S3J's join phase)."""

import random

import pytest

from repro.core.sync_scan import synchronized_scan
from repro.curves.hilbert import HilbertCurve
from repro.filtertree.levels import LevelAssigner
from repro.geometry.rect import Rect
from repro.storage.manager import StorageConfig, StorageManager

ORDER = 10
CURVE = HilbertCurve(order=ORDER)
ASSIGNER = LevelAssigner(order=ORDER, max_level=ORDER)


def build_level_files(storage, tag, rects, start_eid=0):
    """Partition + sort rects into Hilbert-ordered level files."""
    by_level = {}
    for i, rect in enumerate(rects):
        level = ASSIGNER.level(rect)
        key = CURVE.key_of_normalized(*rect.center)
        by_level.setdefault(level, []).append(
            (start_eid + i, rect.xlo, rect.ylo, rect.xhi, rect.yhi, key)
        )
    files = {}
    for level, records in by_level.items():
        records.sort(key=lambda r: r[5])
        handle = storage.create_file(f"{tag}-L{level}")
        handle.append_many(records)
        files[level] = handle
    storage.phase_boundary()
    return files


def random_rects(rng, count, max_side=0.25):
    rects = []
    for _ in range(count):
        x = rng.uniform(0, 1)
        y = rng.uniform(0, 1)
        side = rng.uniform(0, max_side)
        rects.append(Rect(x, y, min(1, x + side), min(1, y + side)))
    return rects


def brute(rects_a, rects_b):
    return {
        (i, 1000 + j)
        for i, a in enumerate(rects_a)
        for j, b in enumerate(rects_b)
        if a.intersects(b)
    }


def run_scan(storage, files_a, files_b):
    pairs = set()
    synchronized_scan(
        files_a, files_b, ORDER, lambda a, b: pairs.add((a[0], b[0])),
        stats=storage.stats,
    )
    return pairs


class TestCorrectness:
    def test_empty_inputs(self, storage):
        assert run_scan(storage, {}, {}) == set()

    def test_one_sided_input(self, storage):
        files_a = build_level_files(storage, "A", [Rect(0.1, 0.1, 0.2, 0.2)])
        assert run_scan(storage, files_a, {}) == set()

    def test_same_cell_pair_found(self, storage):
        rect = Rect(0.1, 0.1, 0.12, 0.12)
        files_a = build_level_files(storage, "A", [rect])
        files_b = build_level_files(storage, "B", [rect], start_eid=1000)
        assert run_scan(storage, files_a, files_b) == {(0, 1000)}

    def test_cross_level_pair_found(self, storage):
        big = Rect(0.05, 0.05, 0.6, 0.6)     # level 0 (crosses center)
        small = Rect(0.3, 0.3, 0.31, 0.31)   # deep level, nested inside
        files_a = build_level_files(storage, "A", [big])
        files_b = build_level_files(storage, "B", [small], start_eid=1000)
        assert run_scan(storage, files_a, files_b) == {(0, 1000)}

    def test_disjoint_cells_no_pair(self, storage):
        a = Rect(0.1, 0.1, 0.12, 0.12)
        b = Rect(0.9, 0.9, 0.92, 0.92)
        files_a = build_level_files(storage, "A", [a])
        files_b = build_level_files(storage, "B", [b], start_eid=1000)
        assert run_scan(storage, files_a, files_b) == set()

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_matches_brute_force(self, seed):
        with StorageManager(StorageConfig(buffer_pages=64)) as storage:
            rng = random.Random(seed)
            rects_a = random_rects(rng, 250)
            rects_b = random_rects(rng, 250)
            files_a = build_level_files(storage, "A", rects_a)
            files_b = build_level_files(storage, "B", rects_b, start_eid=1000)
            assert run_scan(storage, files_a, files_b) == brute(rects_a, rects_b)

    def test_no_duplicate_pairs(self):
        with StorageManager(StorageConfig(buffer_pages=64)) as storage:
            rng = random.Random(5)
            rects_a = random_rects(rng, 200)
            rects_b = random_rects(rng, 200)
            files_a = build_level_files(storage, "A", rects_a)
            files_b = build_level_files(storage, "B", rects_b, start_eid=1000)
            seen = []
            synchronized_scan(
                files_a, files_b, ORDER, lambda a, b: seen.append((a[0], b[0]))
            )
            assert len(seen) == len(set(seen))

    def test_orientation(self):
        """on_pair always receives the A record first."""
        with StorageManager(StorageConfig(buffer_pages=64)) as storage:
            rng = random.Random(6)
            rects_a = random_rects(rng, 80)
            rects_b = random_rects(rng, 80)
            files_a = build_level_files(storage, "A", rects_a)
            files_b = build_level_files(storage, "B", rects_b, start_eid=1000)
            pairs = run_scan(storage, files_a, files_b)
            assert all(a < 1000 <= b for a, b in pairs)


class TestReadOnceInvariant:
    def test_each_page_read_exactly_once(self):
        """The property the algorithm is designed around (section 3.1):
        the join phase reads every level-file page exactly once."""
        with StorageManager(StorageConfig(buffer_pages=64)) as storage:
            rng = random.Random(7)
            files_a = build_level_files(storage, "A", random_rects(rng, 800))
            files_b = build_level_files(
                storage, "B", random_rects(rng, 800), start_eid=5000
            )
            total_pages = sum(
                f.num_pages for f in list(files_a.values()) + list(files_b.values())
            )
            storage.stats.reset()
            with storage.stats.phase("join"):
                synchronized_scan(files_a, files_b, ORDER, lambda a, b: None)
            phase = storage.stats.phases["join"]
            assert phase.page_reads == total_pages
            assert phase.buffer_hits == 0
