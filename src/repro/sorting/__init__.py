"""External sorting.

The paper implements S3J's sort phase and PBSM's duplicate-eliminating
result sort with "a sort utility commonly available in database
systems"; S3J and PBSM share the same sorting module in the prototype
(section 5).  :class:`~repro.sorting.external_sort.ExternalSorter` is
that module: a multi-pass merge sort over paged files with fan-in
``F = M / B`` (section 4.1.1) and optional duplicate elimination
applied in every pass (section 4.1.2, equation 15).
"""

from repro.sorting.external_sort import ExternalSorter, SortResult

__all__ = ["ExternalSorter", "SortResult"]
