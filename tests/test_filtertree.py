"""Tests for the Filter-Tree level machinery."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.filtertree.grid import cell_of_point, cell_rect, cells_overlapping
from repro.filtertree.levels import LevelAssigner, common_prefix_bits
from repro.filtertree.occupancy import (
    level_fraction,
    level_fractions,
    lowest_level,
    probability_level_at_least,
)
from repro.geometry.rect import Rect

coords = st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False)


class TestCommonPrefixBits:
    def test_equal_values(self):
        assert common_prefix_bits(5, 5, 8) == 8

    def test_differ_in_top_bit(self):
        assert common_prefix_bits(0, 128, 8) == 0

    def test_differ_in_bottom_bit(self):
        assert common_prefix_bits(6, 7, 8) == 7

    def test_width_overflow_raises(self):
        with pytest.raises(ValueError):
            common_prefix_bits(0, 256, 8)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            common_prefix_bits(-1, 1, 8)

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_matches_string_prefix(self, a, b):
        bits_a = format(a, "08b")
        bits_b = format(b, "08b")
        expected = 0
        for ca, cb in zip(bits_a, bits_b):
            if ca != cb:
                break
            expected += 1
        assert common_prefix_bits(a, b, 8) == expected


class TestLevelAssigner:
    def test_center_cut_is_level_zero(self):
        assigner = LevelAssigner(order=16)
        assert assigner.level(Rect(0.4, 0.4, 0.6, 0.6)) == 0

    def test_cut_in_one_dimension_only(self):
        assigner = LevelAssigner(order=16)
        # Crosses x = 0.5 but not any y line above level 0.
        assert assigner.level(Rect(0.45, 0.1, 0.55, 0.2)) == 0

    def test_quadrant_resident_is_level_one_or_more(self):
        assigner = LevelAssigner(order=16)
        assert assigner.level(Rect(0.1, 0.1, 0.2, 0.2)) >= 1

    def test_point_hits_max_level(self):
        assigner = LevelAssigner(order=16, max_level=16)
        assert assigner.level(Rect.point(0.3, 0.7)) == 16

    def test_max_level_cap(self):
        assigner = LevelAssigner(order=16, max_level=4)
        assert assigner.level(Rect.point(0.3, 0.7)) == 4

    def test_level_definition(self):
        """level(e) is the largest l such that e fits inside one cell
        of the 2^l grid."""
        assigner = LevelAssigner(order=10, max_level=10)
        rect = Rect(0.26, 0.26, 0.37, 0.30)
        level = assigner.level(rect)
        for l in range(level + 1):
            side = 1 << l
            cx = int(rect.xlo * side)
            cy = int(rect.ylo * side)
            cell = Rect(cx / side, cy / side, (cx + 1) / side, (cy + 1) / side)
            assert cell.contains(rect), f"does not fit at level {l}"
        side = 1 << (level + 1)
        cx = int(rect.xlo * side)
        cy = int(rect.ylo * side)
        cell = Rect(cx / side, cy / side, (cx + 1) / side, (cy + 1) / side)
        assert not cell.contains(rect)

    @given(coords, coords, st.floats(0.0, 0.5), st.floats(0.0, 0.5))
    def test_monotone_under_growth(self, x, y, w, h):
        assigner = LevelAssigner(order=12, max_level=12)
        rect = Rect(x * 0.5, y * 0.5, x * 0.5 + w * 0.5, y * 0.5 + h * 0.5)
        grown = rect.expanded(0.05).clamped()
        assert assigner.level(grown) <= assigner.level(rect)

    @given(coords, coords, coords, coords)
    def test_entity_fits_its_level_cell(self, x1, y1, x2, y2):
        assigner = LevelAssigner(order=12, max_level=12)
        rect = Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
        level = assigner.level(rect)
        cx, cy = assigner.cell_of(rect, level)
        side = assigner.cell_side(level)
        cell = Rect(cx * side, cy * side, (cx + 1) * side, (cy + 1) * side)
        # Quantized containment: corners land in the same cell indices.
        assert assigner.quantize(rect.xlo) >> (assigner.order - level) == cx
        assert assigner.quantize(rect.xhi) >> (assigner.order - level) == cx
        assert cell.width == pytest.approx(side)

    def test_vectorized_matches_scalar(self):
        assigner = LevelAssigner(order=16, max_level=16)
        rng = np.random.default_rng(3)
        xlo = rng.random(200) * 0.9
        ylo = rng.random(200) * 0.9
        xhi = xlo + rng.random(200) * 0.1
        yhi = ylo + rng.random(200) * 0.1
        batch = assigner.levels(xlo, ylo, xhi, yhi)
        for i in range(200):
            rect = Rect(xlo[i], ylo[i], xhi[i], yhi[i])
            assert int(batch[i]) == assigner.level(rect)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            LevelAssigner(order=0)
        with pytest.raises(ValueError):
            LevelAssigner(order=8, max_level=9)

    def test_num_levels(self):
        assert LevelAssigner(order=16, max_level=10).num_levels == 11


class TestOccupancy:
    def test_lowest_level_values(self):
        assert lowest_level(0.5) == 1
        assert lowest_level(0.1) == 3
        assert lowest_level(1.0) == 0

    def test_lowest_level_bounds(self):
        with pytest.raises(ValueError):
            lowest_level(0.0)
        with pytest.raises(ValueError):
            lowest_level(1.5)

    def test_f0_matches_paper(self):
        """Equation 2: f_0 = d(2 - d)."""
        for d in (0.01, 0.05, 0.2):
            assert level_fraction(0, d) == pytest.approx(d * (2 - d))

    def test_fractions_sum_to_one(self):
        for d in (0.003, 0.01, 0.07, 0.3):
            assert sum(level_fractions(d)) == pytest.approx(1.0)

    def test_fractions_nonnegative(self):
        for d in (0.001, 0.02, 0.4):
            assert all(f >= 0 for f in level_fractions(d))

    def test_beyond_lowest_level_is_zero(self):
        assert level_fraction(10, 0.1) == 0.0

    def test_max_level_folding(self):
        d = 0.001  # k(d) = 9
        folded = level_fractions(d, max_level=5)
        assert len(folded) == 6
        assert sum(folded) == pytest.approx(1.0)

    def test_matches_monte_carlo(self):
        """The closed form must match an empirical simulation of the
        level function on uniform squares.

        The paper's model places corners uniformly over [0, 1] rather
        than [0, 1-d], so the approximation is tight only while
        ``d * 2^i`` is small — we test in that regime.
        """
        d = 0.02
        assigner = LevelAssigner(order=16, max_level=16)
        rng = np.random.default_rng(11)
        n = 20000
        counts = [0] * (lowest_level(d) + 1)
        for _ in range(n):
            x = rng.random() * (1 - d)
            y = rng.random() * (1 - d)
            level = assigner.level(Rect(x, y, x + d, y + d))
            counts[min(level, len(counts) - 1)] += 1
        for i, fraction in enumerate(level_fractions(d)):
            assert counts[i] / n == pytest.approx(fraction, abs=0.02)

    def test_probability_monotone_in_level(self):
        d = 0.01
        probs = [probability_level_at_least(i, d) for i in range(8)]
        assert probs == sorted(probs, reverse=True)


class TestGrid:
    def test_cell_of_point(self):
        assert cell_of_point(0.0, 0.0, 2) == (0, 0)
        assert cell_of_point(0.99, 0.99, 2) == (3, 3)
        assert cell_of_point(1.0, 1.0, 2) == (3, 3)  # clamped

    def test_cells_overlapping_single(self):
        cells = list(cells_overlapping(Rect(0.1, 0.1, 0.2, 0.2), 2))
        assert cells == [(0, 0)]

    def test_cells_overlapping_straddle(self):
        cells = set(cells_overlapping(Rect(0.2, 0.2, 0.3, 0.3), 2))
        assert cells == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_cells_overlapping_whole_space(self):
        cells = list(cells_overlapping(Rect(0, 0, 1, 1), 1))
        assert len(cells) == 4

    def test_cell_rect_roundtrip(self):
        rect = cell_rect(2, 3, 2)
        assert rect == Rect(0.5, 0.75, 0.75, 1.0)

    def test_cell_rect_bounds(self):
        with pytest.raises(ValueError):
            cell_rect(4, 0, 2)

    def test_overlap_consistency(self):
        """cells_overlapping agrees with geometric intersection."""
        rect = Rect(0.15, 0.35, 0.45, 0.6)
        level = 3
        expected = {
            (cx, cy)
            for cx in range(8)
            for cy in range(8)
            if cell_rect(cx, cy, level).intersects(rect)
        }
        assert set(cells_overlapping(rect, level)) == expected
