"""Tests for the long-lived join service (repro.service).

Index semantics (delta / tombstones / compaction / epoch), the service
front-end's defensive layers (token bucket, circuit breaker, LRU
cache), the JSON-lines server round-trip, and a quick run of the
service differential gate.  Async paths run under ``asyncio.run`` —
the suite has no pytest-asyncio dependency.
"""

import asyncio
import json

import pytest

from repro.geometry.entity import Entity
from repro.geometry.rect import Rect
from repro.join.api import spatial_join
from repro.service import (
    BreakerState,
    CircuitBreaker,
    JoinService,
    PersistentIndex,
    QueryOutcome,
    ResultCache,
    ServiceConfig,
    ServiceServer,
    TokenBucket,
)
from repro.verify.service import run_service_verify

from tests.conftest import brute_force_self_pairs, make_squares


def square(eid: int, x: float, y: float, side: float = 0.05) -> Entity:
    return Entity.from_geometry(eid, Rect(x, y, x + side, y + side))


def oracle_pairs(index: PersistentIndex) -> frozenset:
    live = index.snapshot_dataset()
    return spatial_join(live, live, algorithm="s3j").pairs


class FakeClock:
    """A manually-advanced monotonic clock for bucket/breaker tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestPersistentIndex:
    def test_bulk_load_self_join_matches_batch(self):
        dataset = make_squares(150, side=0.03, seed=7, name="SVC")
        with PersistentIndex(dataset.entities) as index:
            assert index.self_join() == oracle_pairs(index)
            assert index.self_join() == brute_force_self_pairs(dataset)

    def test_insert_lands_in_delta_and_joins(self):
        dataset = make_squares(60, side=0.03, seed=3)
        with PersistentIndex(dataset.entities) as index:
            epoch = index.insert(square(1000, 0.4, 0.4, side=0.2))
            assert epoch == 1
            assert index.delta_records == 1
            assert 1000 in index
            assert any(1000 in pair for pair in index.self_join())
            assert index.self_join() == oracle_pairs(index)

    def test_duplicate_insert_raises(self):
        with PersistentIndex([square(1, 0.1, 0.1)]) as index:
            with pytest.raises(ValueError, match="already live"):
                index.insert(square(1, 0.5, 0.5))

    def test_delete_base_entity_tombstones(self):
        dataset = make_squares(40, side=0.04, seed=5)
        with PersistentIndex(dataset.entities) as index:
            index.delete(dataset.entities[0].eid)
            assert index.delta_records == 1  # the tombstone
            assert dataset.entities[0].eid not in index
            assert index.self_join() == oracle_pairs(index)

    def test_delete_buffered_insert_removes_outright(self):
        with PersistentIndex([square(1, 0.1, 0.1)]) as index:
            index.insert(square(2, 0.5, 0.5))
            assert index.delta_records == 1
            index.delete(2)
            assert index.delta_records == 0  # no tombstone needed
            assert 2 not in index

    def test_delete_missing_raises(self):
        with PersistentIndex() as index:
            with pytest.raises(KeyError, match="no live entity"):
                index.delete(42)

    def test_compaction_folds_delta_preserves_answers(self):
        dataset = make_squares(80, side=0.04, seed=11)
        with PersistentIndex(dataset.entities) as index:
            for i in range(10):
                index.insert(square(2000 + i, 0.05 + 0.09 * i, 0.3, side=0.1))
            index.delete(dataset.entities[0].eid)
            before = index.self_join()
            epoch_before = index.epoch
            assert index.compact()
            assert index.delta_records == 0
            assert index.compactions == 1
            assert index.epoch == epoch_before + 1
            assert index.self_join() == before == oracle_pairs(index)

    def test_compact_empty_delta_is_noop(self):
        with PersistentIndex(make_squares(20, 0.03, seed=1).entities) as index:
            epoch = index.epoch
            assert not index.compact()
            assert index.epoch == epoch

    def test_compaction_threshold_flag(self):
        with PersistentIndex(compaction_threshold=2) as index:
            index.insert(square(1, 0.1, 0.1))
            assert not index.needs_compaction
            index.insert(square(2, 0.5, 0.5))
            assert index.needs_compaction

    def test_window_and_point_queries(self):
        dataset = make_squares(100, side=0.05, seed=13)
        with PersistentIndex(dataset.entities) as index:
            window = Rect(0.2, 0.2, 0.6, 0.6)
            expected = tuple(
                sorted(
                    e.eid for e in dataset.entities if e.mbr.intersects(window)
                )
            )
            assert index.window_query(window) == expected
            x, y = 0.3, 0.3
            hits = index.point_query(x, y)
            assert hits == tuple(
                sorted(
                    e.eid
                    for e in dataset.entities
                    if e.mbr.contains_point(x, y)
                )
            )

    def test_every_mutation_bumps_epoch(self):
        with PersistentIndex() as index:
            assert index.insert(square(1, 0.1, 0.1)) == 1
            assert index.insert(square(2, 0.2, 0.2)) == 2
            assert index.delete(1) == 3

    def test_close_idempotent(self):
        index = PersistentIndex(make_squares(10, 0.03, seed=1).entities)
        index.close()
        index.close()  # second close is a no-op
        assert index.storage.closed


class TestTokenBucket:
    def test_unlimited_when_rate_none(self):
        bucket = TokenBucket(None, burst=1, clock=FakeClock())
        assert all(bucket.try_acquire() for _ in range(100))

    def test_burst_exhaustion_and_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()  # burst drained
        clock.advance(0.1)  # 1 token refilled at 10/s
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=3, clock=clock)
        clock.advance(60.0)
        for _ in range(3):
            assert bucket.try_acquire()
        assert not bucket.try_acquire()


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        breaker = CircuitBreaker(threshold=3, reset_s=1.0, clock=FakeClock())
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.record_failure()  # third failure opens it
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        assert breaker.opened_count == 1

    def test_half_open_single_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, reset_s=1.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(1.5)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()  # the one probe
        assert not breaker.allow()  # a second caller is held back
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=5, reset_s=1.0, clock=clock)
        for _ in range(5):
            breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_failure()  # probe fails: back to OPEN immediately
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(threshold=2, reset_s=1.0, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED


class TestResultCache:
    def test_lru_eviction_order(self):
        cache = ResultCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)  # evicts "b", the least recent
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_hit_miss_counters(self):
        cache = ResultCache(maxsize=4)
        cache.put("k", "v")
        cache.get("k")
        cache.get("absent")
        assert (cache.hits, cache.misses) == (1, 1)

    def test_zero_size_never_stores(self):
        cache = ResultCache(maxsize=0)
        cache.put("k", "v")
        assert len(cache) == 0
        assert cache.get("k") is None


class TestServiceConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_inflight": 0},
            {"rate": 0.0},
            {"rate": -1.0},
            {"burst": 0},
            {"cache_size": -1},
            {"breaker_threshold": 0},
            {"breaker_reset_s": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs)


class TestJoinService:
    def run(self, coro):
        return asyncio.run(coro)

    def test_join_matches_batch_oracle(self):
        dataset = make_squares(120, side=0.04, seed=17)

        async def scenario():
            with PersistentIndex(dataset.entities) as index:
                async with JoinService(index) as service:
                    outcome = await service.join()
                    assert outcome.status == "ok"
                    assert outcome.pairs == oracle_pairs(index)
                    return outcome

        outcome = self.run(scenario())
        assert isinstance(outcome, QueryOutcome)
        assert outcome.complete

    def test_cache_hit_and_epoch_invalidation(self):
        dataset = make_squares(60, side=0.04, seed=19)

        async def scenario():
            with PersistentIndex(dataset.entities) as index:
                service = JoinService(index)
                first = await service.join()
                second = await service.join()
                assert not first.cached and second.cached
                assert second.pairs == first.pairs
                await service.insert(square(5000, 0.45, 0.45, side=0.1))
                third = await service.join()  # epoch moved: recomputed
                assert not third.cached
                assert third.pairs == oracle_pairs(index)
                assert third.pairs != first.pairs

        self.run(scenario())

    def test_rate_limit_rejects_loudly(self):
        clock = FakeClock()

        async def scenario():
            with PersistentIndex([square(1, 0.1, 0.1)]) as index:
                config = ServiceConfig(rate=1.0, burst=1)
                service = JoinService(index, config, clock=clock)
                first = await service.point(0.5, 0.5)
                second = await service.point(0.5, 0.5)
                assert first.status == "ok"
                assert second.status == "rejected"
                assert second.error == "rate limited"
                assert service.rejected == 1
                clock.advance(2.0)
                third = await service.point(0.5, 0.5)
                assert third.status == "ok"

        self.run(scenario())

    def test_background_compactor_folds_delta(self):
        async def scenario():
            with PersistentIndex(compaction_threshold=5) as index:
                config = ServiceConfig(compaction_interval_s=0.005)
                async with JoinService(index, config) as service:
                    for i in range(8):
                        await service.insert(
                            square(i, 0.1 + 0.08 * i, 0.2, side=0.06)
                        )
                    for _ in range(200):
                        if index.compactions:
                            break
                        await asyncio.sleep(0.005)
                    assert index.compactions >= 1
                    assert index.delta_records < 5
                    outcome = await service.join()
                    assert outcome.status == "ok"
                    assert outcome.pairs == oracle_pairs(index)

        self.run(scenario())

    def test_stats_snapshot_keys(self):
        async def scenario():
            with PersistentIndex([square(1, 0.1, 0.1)]) as index:
                service = JoinService(index)
                await service.point(0.1, 0.1)
                stats = service.stats()
                assert stats["entities"] == 1
                assert stats["queries"] == 1
                assert stats["breaker"]["state"] == "closed"
                assert set(stats["cache"]) == {"size", "hits", "misses"}
                json.dumps(stats)  # must be JSON-serializable as-is

        self.run(scenario())


class TestServiceServer:
    def test_json_lines_round_trip(self):
        dataset = make_squares(50, side=0.04, seed=23)

        async def scenario():
            with PersistentIndex(dataset.entities) as index:
                server = ServiceServer(JoinService(index))
                host, port = await server.start()
                reader, writer = await asyncio.open_connection(host, port)

                async def ask(request):
                    writer.write(json.dumps(request).encode() + b"\n")
                    await writer.drain()
                    return json.loads(await reader.readline())

                join = await ask({"op": "join"})
                assert join["status"] == "ok"
                expected = sorted(
                    list(pair) for pair in oracle_pairs(index)
                )
                assert join["pairs"] == expected

                inserted = await ask(
                    {"op": "insert", "eid": 9000, "xlo": 0.4, "ylo": 0.4,
                     "xhi": 0.6, "yhi": 0.6}
                )
                assert inserted == {"ok": True, "epoch": 1}

                window = await ask(
                    {"op": "window", "xlo": 0.45, "ylo": 0.45,
                     "xhi": 0.55, "yhi": 0.55}
                )
                assert 9000 in window["eids"]

                deleted = await ask({"op": "delete", "eid": 9000})
                assert deleted["ok"] and deleted["epoch"] == 2

                stats = await ask({"op": "stats"})
                assert stats["entities"] == 50

                bad = await ask({"op": "frobnicate"})
                assert "unknown op" in bad["error"]

                malformed = await ask({"op": "delete"})  # missing eid
                assert "error" in malformed  # connection survives
                assert (await ask({"op": "stats"}))["entities"] == 50

                writer.close()
                await writer.wait_closed()
                await server.stop()

        asyncio.run(scenario())


class TestServiceVerifyGate:
    def test_clean_replay_passes(self):
        report = run_service_verify(seed=2, ops=20, entities=60, faults=False)
        assert report.ok, report.summary()
        assert report.epochs_checked == 21
        assert report.failed_queries == 0
        assert report.partial_queries == 0

    def test_fault_replay_passes_and_exercises_breaker(self):
        report = run_service_verify(seed=0, ops=60, entities=100, faults=True)
        assert report.ok, report.summary()
        assert report.failed_queries > 0
        assert report.breaker_opened > 0
