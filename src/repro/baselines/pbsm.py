"""Partition Based Spatial Merge Join (Patel & DeWitt, SIGMOD 1996).

The algorithm of the paper's figure 2:

1. Compute the number of partitions ``D = (S_A + S_B) / M``
   (equation 8) and lay a ``G x G`` grid of *tiles* over the data
   space; map tiles to partitions round-robin or by hash.
2. For each data set, scan it and record every entity in **all** the
   partitions its MBR's tiles map to — entities crossing tile
   boundaries are *replicated*.  Entities overlapping no tile are
   filtered out.
3. Join each pair of corresponding partitions with a plane sweep,
   repartitioning pairs that do not fit in memory.
4. Sort the candidate pairs and eliminate the duplicates the
   replication introduced.
"""

from __future__ import annotations

import math

from repro.core.partition import DEFAULT_BATCH_SIZE, partition_tiles
from repro.geometry.rect import Rect
from repro.join.base import SpatialJoinAlgorithm
from repro.join.metrics import JoinMetrics
from repro.sorting.external_sort import ExternalSorter
from repro.storage.manager import StorageManager
from repro.storage.pagedfile import PagedFile
from repro.storage.records import EID, XHI, XLO, YHI, YLO, CandidatePairCodec
from repro.sweep.plane_sweep import sweep_intersections

_MAPPINGS = ("round_robin", "hash")
_MAX_REPARTITION_DEPTH = 8


def suggested_partitions(pages_a: int, pages_b: int, memory_pages: int) -> int:
    """Equation 8: ``D = (S_A + S_B) / M``, capped at ``M - 4`` output
    buffers (a one-pass partitioning step needs an input buffer besides
    one output page per partition, or the buffer pool thrashes)."""
    target = math.ceil((pages_a + pages_b) / memory_pages)
    return max(1, min(target, memory_pages - 4))


class PartitionBasedSpatialMergeJoin(SpatialJoinAlgorithm):
    """PBSM.

    Parameters
    ----------
    storage:
        The storage manager to run against.
    tiles_per_dim:
        ``G``: the tile grid is ``G x G`` (the paper's figures label
        runs "PBSM 20x20", "PBSM 40x40"...).  More tiles improve load
        balance but increase replication (section 2.1).
    num_partitions:
        Override for ``D``; computed from equation 8 by default.
    mapping:
        Tile-to-partition mapping: ``"round_robin"`` or ``"hash"``.
    tile_space:
        The rectangle tiled by the grid.  Entities outside it are
        filtered out; defaults to the unit square (no filtering).
    batch_size:
        Records per block of the batched tiling pass
        (:mod:`repro.core.partition`); ``None`` selects the scalar
        reference path.  Both paths produce bit-identical partition
        files and ledger counts.
    """

    name = "pbsm"
    phase_names = ("partition", "join", "sort")

    def __init__(
        self,
        storage: StorageManager,
        tiles_per_dim: int = 32,
        num_partitions: int | None = None,
        mapping: str = "round_robin",
        tile_space: Rect | None = None,
        batch_size: int | None = DEFAULT_BATCH_SIZE,
    ) -> None:
        super().__init__(storage)
        if tiles_per_dim < 1:
            raise ValueError("tiles_per_dim must be positive")
        if mapping not in _MAPPINGS:
            raise ValueError(f"mapping must be one of {_MAPPINGS}")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be positive (or None for scalar)")
        self.tiles_per_dim = tiles_per_dim
        self.num_partitions = num_partitions
        self.mapping = mapping
        self.tile_space = tile_space or Rect(0.0, 0.0, 1.0, 1.0)
        self.batch_size = batch_size
        self._subfile_seq = 0

    def run_filter_step(
        self, input_a: PagedFile, input_b: PagedFile
    ) -> tuple[set[tuple[int, int]], JoinMetrics]:
        partitions = self.num_partitions or suggested_partitions(
            input_a.num_pages, input_b.num_pages, self.storage.memory_pages
        )

        with self._phase("partition"):
            files_a, written_a, filtered_a = self._partition(
                input_a, "A", partitions, salt=0
            )
            # Completed A tails go out now (one sequential write each,
            # due at the phase boundary regardless) so the B scan's
            # pool pressure never forces dirty evictions whose order
            # depends on LRU recency (repro.core.partition's parity
            # invariant).
            for handle in files_a.values():
                handle.flush()
            files_b, written_b, filtered_b = self._partition(
                input_b, "B", partitions, salt=0
            )
            self.storage.phase_boundary()

        pairs: set[tuple[int, int]] = set()
        candidates = self.storage.create_file(
            self._file_name("candidates"), CandidatePairCodec()
        )
        repartitioned = 0
        events = self.obs.events
        with self._phase("join"):
            for p in range(partitions):
                repartitioned += self._join_pair(
                    files_a.get(p), files_b.get(p), candidates, pairs, depth=0
                )
                if events.enabled:
                    events.emit(
                        "shard_progress", phase="join", done=p + 1,
                        total=partitions, detail=f"P{p}", pairs=len(pairs),
                    )
            self.storage.phase_boundary()

        with self._phase("sort"):
            sorter = ExternalSorter(self.storage)
            result = sorter.sort(
                candidates,
                self._file_name("result"),
                key=lambda record: record,
                unique=True,
            ).output
            self.storage.phase_boundary()

        metrics = self._build_metrics(
            num_partitions=partitions,
            tiles_per_dim=self.tiles_per_dim,
            filtered_a=filtered_a,
            filtered_b=filtered_b,
            repartitioned_pairs=repartitioned,
            candidate_pages=candidates.num_pages,
            result_pages=result.num_pages,
        )
        if input_a.num_records:
            metrics.replication_a = written_a / input_a.num_records
        if input_b.num_records:
            metrics.replication_b = written_b / input_b.num_records
        return pairs, metrics

    # -- partitioning -------------------------------------------------------

    def _tiles_of(self, mbr: Rect, grid: int | None = None) -> list[int]:
        """Row-major indices of the tiles the MBR overlaps (within the
        tile space); empty when the entity lies outside the tile space
        entirely (the filtering case)."""
        space = self.tile_space
        clipped = mbr.intersection(space)
        if clipped is None:
            return []
        if grid is None:
            grid = self.tiles_per_dim
        width = space.width or 1.0
        height = space.height or 1.0
        cx_lo = min(int((clipped.xlo - space.xlo) / width * grid), grid - 1)
        cy_lo = min(int((clipped.ylo - space.ylo) / height * grid), grid - 1)
        cx_hi = min(int((clipped.xhi - space.xlo) / width * grid), grid - 1)
        cy_hi = min(int((clipped.yhi - space.ylo) / height * grid), grid - 1)
        return [
            cy * grid + cx
            for cy in range(cy_lo, cy_hi + 1)
            for cx in range(cx_lo, cx_hi + 1)
        ]

    def _tile_to_partition(self, tile: int, partitions: int, salt: int) -> int:
        if self.mapping == "round_robin" and salt == 0:
            return tile % partitions
        return _mix32(tile + salt * 0x9E3779B1) % partitions

    def _partition(
        self,
        source: PagedFile,
        tag: str,
        partitions: int,
        salt: int,
        name_prefix: str = "",
        grid: int | None = None,
    ) -> tuple[dict[int, PagedFile], int, int]:
        """Scan ``source`` and scatter descriptors into partition files
        (with replication).  Returns (files, records written, records
        filtered out).  Dispatches to the batched tiling pass unless
        ``batch_size`` is None; the scalar loop below is the parity
        reference."""
        if self.batch_size is not None:
            return partition_tiles(
                source,
                storage=self.storage,
                space=self.tile_space,
                grid=grid if grid is not None else self.tiles_per_dim,
                tile_to_partition=lambda tile: self._tile_to_partition(
                    tile, partitions, salt
                ),
                namer=lambda p: self._file_name(f"{name_prefix}{tag}-P{p}"),
                batch_size=self.batch_size,
            )
        stats = self.storage.stats
        files: dict[int, PagedFile] = {}
        written = 0
        filtered = 0
        for record in source.scan():
            stats.charge_cpu("partition")
            mbr = Rect(record[XLO], record[YLO], record[XHI], record[YHI])
            tiles = self._tiles_of(mbr, grid)
            if not tiles:
                filtered += 1
                continue
            targets = {
                self._tile_to_partition(tile, partitions, salt) for tile in tiles
            }
            for p in targets:
                handle = files.get(p)
                if handle is None:
                    handle = self.storage.create_file(
                        self._file_name(f"{name_prefix}{tag}-P{p}")
                    )
                    files[p] = handle
                handle.append(record)
                written += 1
        return files, written, filtered

    # -- joining ------------------------------------------------------------

    def _join_pair(
        self,
        file_a: PagedFile | None,
        file_b: PagedFile | None,
        candidates: PagedFile,
        pairs: set[tuple[int, int]],
        depth: int,
        parent_pages: int | None = None,
    ) -> int:
        """Join one partition pair, repartitioning when it does not fit
        in memory.  Returns the number of repartitioning rounds.

        Repartitioning refines the tile grid, which splits point-like
        skew but *adds* replication for extended objects; when a round
        fails to shrink the pair (or the depth limit is hit), the pair
        is swept directly instead of recursing further.
        """
        if file_a is None or file_b is None:
            return 0
        if file_a.num_records == 0 or file_b.num_records == 0:
            return 0
        total_pages = file_a.num_pages + file_b.num_pages
        memory = self.storage.memory_pages
        # Finer tiles add replication, so a "split" can shrink a pair
        # by less than the added copies; require real progress or the
        # recursion grows the data geometrically.
        no_progress = (
            parent_pages is not None and total_pages >= 0.8 * parent_pages
        )
        if (
            total_pages <= memory
            or depth >= _MAX_REPARTITION_DEPTH
            or no_progress
        ):
            self._sweep_pair(file_a, file_b, candidates, pairs)
            return 0

        # Repartition: re-scatter both partition files with a salted
        # hash mapping over a *finer* tiling (doubling the grid each
        # round, so skew that concentrates inside a single tile — e.g.
        # a point cluster — eventually splits; the paper observes that
        # skewed data makes PBSM repartition heavily, section 5.2.1).
        sub_count = max(2, math.ceil(total_pages / memory))
        # Double the grid per round so skew concentrated inside single
        # tiles (point clusters) splits after a few rounds.
        fine_grid = min(self.tiles_per_dim << (depth + 1), 1 << 14)
        self._subfile_seq += 1
        prefix = f"r{self._subfile_seq}-"
        with self._phase("partition"):
            subs_a, _, _ = self._partition(
                file_a, "A", sub_count, salt=depth + 1, name_prefix=prefix,
                grid=fine_grid,
            )
            subs_b, _, _ = self._partition(
                file_b, "B", sub_count, salt=depth + 1, name_prefix=prefix,
                grid=fine_grid,
            )
            self.storage.pool.invalidate()
        self.storage.drop_file(file_a.name)
        self.storage.drop_file(file_b.name)
        rounds = 1
        for p in range(sub_count):
            rounds += self._join_pair(
                subs_a.get(p),
                subs_b.get(p),
                candidates,
                pairs,
                depth + 1,
                parent_pages=total_pages,
            )
        return rounds

    def _sweep_pair(
        self,
        file_a: PagedFile,
        file_b: PagedFile,
        candidates: PagedFile,
        pairs: set[tuple[int, int]],
    ) -> None:
        """Load a fitting partition pair and plane-sweep it."""
        records_a = list(file_a.scan())
        records_b = list(file_b.scan())
        for rec_a, rec_b in sweep_intersections(
            records_a, records_b, stats=self.storage.stats
        ):
            pair = (rec_a[EID], rec_b[EID])
            pairs.add(pair)
            candidates.append(pair)
        self.storage.drop_file(file_a.name)
        self.storage.drop_file(file_b.name)


def _mix32(value: int) -> int:
    """A full-avalanche 32-bit integer hash.

    Tiles assigned to one partition form arithmetic progressions, so
    the tile-to-sub-partition mapping needs every output bit to depend
    on every input bit, or repartitioning rounds degenerate into
    one-bucket splits.
    """
    value &= 0xFFFFFFFF
    value = ((value ^ (value >> 16)) * 0x45D9F3B) & 0xFFFFFFFF
    value = ((value ^ (value >> 16)) * 0x45D9F3B) & 0xFFFFFFFF
    return (value ^ (value >> 16)) & 0xFFFFFFFF
