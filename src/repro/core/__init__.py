"""Size Separation Spatial Join — the paper's primary contribution.

- :class:`~repro.core.s3j.SizeSeparationSpatialJoin` — the S3J
  algorithm (figure 5): partition into level files, sort each by
  Hilbert value, and join with a synchronized scan that reads each page
  exactly once.
- :mod:`~repro.core.sync_scan` — the synchronized scan itself, a
  nested-interval merge over all sorted level files.
- :class:`~repro.core.bitmap.DynamicSpatialBitmap` — DSB (section 3.2),
  giving S3J the filtering capability of PBSM/SHJ.
"""

from repro.core.bitmap import DynamicSpatialBitmap
from repro.core.s3j import SizeSeparationSpatialJoin
from repro.core.sync_scan import synchronized_scan

__all__ = [
    "DynamicSpatialBitmap",
    "SizeSeparationSpatialJoin",
    "synchronized_scan",
]
