"""Tests for the analytic I/O cost models (section 4)."""

import pytest

from repro.costmodel.pbsm import (
    expected_replication_factor,
    pbsm_io,
    pbsm_partitions,
)
from repro.costmodel.replication import inside_fraction, replicated_fraction
from repro.costmodel.s3j import (
    s3j_best_case_io,
    s3j_hilbert_cpu,
    s3j_io,
    s3j_worst_case_io,
    sort_passes,
)
from repro.costmodel.shj import shj_io
from repro.filtertree.occupancy import level_fractions


class TestReplicationFraction:
    def test_zero_at_zero(self):
        assert replicated_fraction(0.0) == 0.0

    def test_one_at_one(self):
        assert replicated_fraction(1.0) == pytest.approx(1.0)

    def test_equation11_form(self):
        """N = 1 - d 2^(j+1) + d^2 2^(2j)."""
        x = 0.3
        assert inside_fraction(x) == pytest.approx(1 - 2 * x + x * x)

    def test_monotone(self):
        values = [replicated_fraction(x / 10) for x in range(11)]
        assert values == sorted(values)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            replicated_fraction(1.5)


class TestSortPasses:
    def test_fits_in_memory(self):
        assert sort_passes(50, 100, 99) == 1

    def test_one_merge_pass(self):
        assert sort_passes(500, 100, 99) == 2

    def test_deep_merge(self):
        assert sort_passes(10000, 10, 4) == 1 + 5  # 1000 runs, fan-in 4

    def test_empty_file(self):
        assert sort_passes(0, 100, 10) == 0


class TestS3JModel:
    def test_best_case_equation5(self):
        assert s3j_best_case_io(100, 200, 30) == 5 * 100 + 5 * 200 + 30

    def test_worst_case_equation6(self):
        total = s3j_worst_case_io(1000, 1000, 100, 50, fan_in=99)
        passes = sort_passes(1000, 100, 99)
        expected = 3 * 1000 + 3 * 1000 + 2 * passes * 1000 + 2 * passes * 1000 + 50
        assert total == expected

    def test_breakdown_sums(self):
        fractions = level_fractions(0.01)
        breakdown = s3j_io(500, 500, 100, fractions, fractions, 40)
        assert breakdown.total_ios == (
            breakdown.scan_ios + breakdown.sort_ios + breakdown.join_ios
        )

    def test_small_files_hit_best_case(self):
        """When every level file fits in memory the model reduces to
        equation 5 (up to page rounding of level files)."""
        fractions = level_fractions(0.01)
        breakdown = s3j_io(100, 100, 1000, fractions, fractions, 10)
        assert breakdown.total_ios == pytest.approx(
            s3j_best_case_io(100, 100, 10), rel=0.15
        )

    def test_hilbert_cpu_equation7(self):
        assert s3j_hilbert_cpu(100, 100, 85) == pytest.approx(
            10e-6 * 200 * 85
        )


class TestPBSMModel:
    def test_partitions_equation8(self):
        assert pbsm_partitions(300, 300, 100) == 6

    def test_partition_io_equation10(self):
        breakdown = pbsm_io(
            pages_a=100,
            pages_b=100,
            memory_pages=50,
            replication_a=1.2,
            replication_b=1.3,
            candidate_pages=20,
            result_pages=10,
            repartition_fraction=0.0,
        )
        assert breakdown.partition_ios == pytest.approx(2.2 * 100 + 2.3 * 100, abs=1)

    def test_repartition_half_equation13(self):
        breakdown = pbsm_io(100, 100, 50, 1.0, 1.0, 20, 10)
        assert breakdown.repartition_ios == pytest.approx(0.5 * (200 + 200), abs=1)

    def test_candidate_fits_in_memory(self):
        breakdown = pbsm_io(100, 100, 50, 1.0, 1.0, 20, 10)
        assert breakdown.sort_ios == 30  # C + J

    def test_dedup_shrink_reduces_sort(self):
        kwargs = dict(
            pages_a=100, pages_b=100, memory_pages=10,
            replication_a=1.0, replication_b=1.0,
            candidate_pages=500, result_pages=100,
        )
        plain = pbsm_io(**kwargs, dedup_shrink=0.0)
        shrunk = pbsm_io(**kwargs, dedup_shrink=0.3)
        assert shrunk.sort_ios < plain.sort_ios

    def test_expected_replication_uniform(self):
        """(1 + d 2^j)^2 expected copies per object."""
        assert expected_replication_factor(0.0, 32) == 1.0
        assert expected_replication_factor(0.01, 100) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_replication_factor(-0.1, 10)
        with pytest.raises(ValueError):
            pbsm_io(1, 1, 1, 1.0, 1.0, 1, 1, repartition_fraction=2.0)


class TestSHJModel:
    def test_partition_io_equations16_17(self):
        breakdown = shj_io(
            pages_a=100,
            pages_b=100,
            memory_pages=50,
            num_partitions=10,
            replication_b=1.5,
            result_pages=10,
        )
        assert breakdown.sample_ios == 10
        assert breakdown.partition_ios == 200 + 250

    def test_join_fitting_equation18(self):
        breakdown = shj_io(100, 100, 50, 10, 1.5, 10, partitions_fit=True)
        assert breakdown.join_ios == 100 + 150 + 10

    def test_join_blockwise_costs_more(self):
        fitting = shj_io(1000, 1000, 20, 4, 2.0, 10, partitions_fit=True)
        blockwise = shj_io(1000, 1000, 20, 4, 2.0, 10, partitions_fit=False)
        assert blockwise.join_ios > fitting.join_ios

    def test_totals(self):
        breakdown = shj_io(100, 100, 50, 10, 1.5, 10)
        assert breakdown.total_ios == (
            breakdown.sample_ios + breakdown.partition_ios + breakdown.join_ios
        )


class TestModelVersusMeasured:
    """The analytic model must track the implementation's ledger for
    the canonical uniform workload (the claim of section 4)."""

    def test_s3j_predicted_vs_measured(self):
        from repro.core.s3j import SizeSeparationSpatialJoin
        from repro.storage.manager import StorageConfig, StorageManager

        from tests.conftest import make_squares

        side = 0.02
        a = make_squares(1700, side, seed=30, name="A")
        b = make_squares(1700, side, seed=31, name="B")
        with StorageManager(StorageConfig(buffer_pages=64)) as storage:
            file_a = a.write_descriptors(storage, "in-a")
            file_b = b.write_descriptors(storage, "in-b")
            storage.phase_boundary()
            storage.stats.reset()
            algo = SizeSeparationSpatialJoin(storage)
            result = algo.join(file_a, file_b)
            fractions = level_fractions(side)
            predicted = s3j_io(
                file_a.num_pages,
                file_b.num_pages,
                64,
                fractions,
                fractions,
                result.metrics.details["result_pages"],
            )
            assert result.metrics.total_ios == pytest.approx(
                predicted.total_ios, rel=0.25
            )
