"""The shard planners: decompose one join into independent sub-joins.

Two planners produce a :class:`ShardPlan`:

**``two-layer``** (the default) is the two-layer space-oriented
partitioning of Tsitsigkos et al. (PAPERS.md, arXiv 2307.09256).  The
space is the ``4^k`` tiles of the level-``k`` Filter-Tree grid; every
entity is *present* in each tile its (margin-expanded) MBR overlaps,
and within a tile it belongs to exactly one class by where its MBR
*starts* relative to the tile:

- **A** — both the low-x and low-y corner start in this tile;
- **B** — the MBR spills in from the west (starts in a tile with a
  smaller x, same y row);
- **C** — the MBR spills in from the south (same x column, smaller y);
- **D** — it spills in from both directions (the MBR's start tile is
  strictly south-west).

Each tile shard then runs a fixed set of class-pair *mini-joins*
instead of one monolithic join.  For a non-self join R ⋈ S the combos

    AA, AB, BA, AC, CA, AD, DA, BC, CB

find every intersecting pair **exactly once** across all tiles: with
closed-interval quantization the *reference tile* of a pair — the tile
of ``(max(xlo_r, xlo_s), max(ylo_r, ylo_s))`` — is the unique tile
where both MBRs are present and the class combo avoids both-spill-x
(``{B,D} x {B,D}``) and both-spill-y (``{C,D} x {C,D}``); see
DESIGN.md section 14 for the proof.  A self join collapses the ordered
combos to ``{AA(self), AB, AC, AD, BC}`` and the executor
canonicalizes mirrored pairs at merge time.  No tile ever joins
"everything", so the residual straggler shard does not exist; the
price is replicated *references* (an entity is shipped to every tile
it overlaps), which the plan accounts for explicitly.

**``residual``** is the legacy single-assignment planner: an entity
whose expanded MBR has Filter-Tree level ``l >= k`` fits wholly inside
one level-``k`` cell and is routed to exactly that cell's shard; an
entity with ``l < k`` is cut by a level-``k`` grid line and goes to
the *residual* shard of large entities.  No entity is ever replicated,
and the full join is the disjoint union

    sum over cells c:  A_c  join  B_c
    +  residual(A)     join  B            (all of B)
    +  (A - residual)  join  residual(B)

where the third term excludes ``residual(A)`` so residual-residual
pairs are found exactly once.  For a self join the plan collapses to
the per-cell self joins plus ``residual(A) join A``; the executor
canonicalizes the mirrored pairs the residual cross join reintroduces.
The residual terms join against whole datasets, so a skewed MBR-size
distribution turns the residual shard into the straggler the
``two-layer`` planner exists to kill; ``residual`` stays selectable so
planner-to-planner parity is itself a verification gate.

Both planners route on the *margin-expanded* MBR — the same box the
join algorithms partition on — so a distance predicate's expansion can
never move an entity across a shard boundary unseen.  Both produce
plans that are pure functions of the inputs and ``shard_level``
(never of the worker count), so results are reproducible across
worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.curves.base import SpaceFillingCurve
from repro.curves.hilbert import HilbertCurve
from repro.filtertree.levels import LevelAssigner
from repro.geometry.entity import Entity
from repro.join.dataset import SpatialDataset

RESIDUAL_A = "residual-A"
RESIDUAL_B = "residual-B"

PLANNERS = ("residual", "two-layer")
"""Selectable shard planners (``plan_join``'s ``planner`` argument)."""

DEFAULT_PLANNER = "two-layer"

TWO_LAYER_COMBOS = (
    ("A", "A"),
    ("A", "B"),
    ("B", "A"),
    ("A", "C"),
    ("C", "A"),
    ("A", "D"),
    ("D", "A"),
    ("B", "C"),
    ("C", "B"),
)
"""Ordered class combos of one tile's mini-joins (non-self join).

Exactly the combos where the two MBRs do not *both* spill into the
tile along the same axis — the pair's reference tile is then this
tile, so every result pair is found exactly once (DESIGN.md §14).
"""

TWO_LAYER_SELF_COMBOS = (
    ("A", "A"),
    ("A", "B"),
    ("A", "C"),
    ("A", "D"),
    ("B", "C"),
)
"""The self-join collapse of :data:`TWO_LAYER_COMBOS`: one unordered
combo per mirrored ordered pair (``AA`` runs as a self join and the
executor canonicalizes at merge)."""


def default_shard_level(workers: int) -> int:
    """The smallest level whose ``4^k`` cells cover ``workers`` shards
    (at least 1, so sharding is exercised even with one worker).

    Computed with integer bit arithmetic — ``ceil(log4(workers))`` via
    floats can come out one too high on libms where ``log(64, 4)``
    returns ``3.0000000000000004``.
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    # ceil(log4(w)) == ceil(bit_length(w - 1) / 2) for w >= 2.
    return max(1, ((workers - 1).bit_length() + 1) // 2)


@dataclass(frozen=True)
class MiniJoin:
    """One class-pair sub-join inside a two-layer tile shard.

    ``self_join`` marks the ``AA`` mini-join of a self join, where both
    sides are the same dataset object; the cross-class mini-joins of a
    self join are *not* marked (their sides differ) and the executor
    canonicalizes their mirrored pairs at merge time.
    """

    label: str  # e.g. "AxB"
    dataset_a: SpatialDataset
    dataset_b: SpatialDataset
    self_join: bool = False

    @property
    def input_records(self) -> int:
        return len(self.dataset_a) + len(self.dataset_b)


@dataclass(frozen=True)
class ShardTask:
    """One independent sub-join of the sharded plan.

    A legacy task (``mini_joins == ()``) is a single monolithic join of
    ``dataset_a`` with ``dataset_b``.  A two-layer tile task carries
    the tile's class-pair decomposition in ``mini_joins``; its
    ``dataset_a``/``dataset_b`` are then the tile's full per-side
    presence sets (each entity once), which is what the executor ships
    and what ``input_records`` weighs.

    ``self_join`` marks tasks whose two sides are the *same* dataset
    object, where the sub-join must canonicalize its pairs; a self
    join's residual cross join (legacy) and cross-class mini-joins
    (two-layer) are not marked — their sides differ and the executor
    canonicalizes at merge time.
    """

    shard_id: str
    kind: str  # "cell" | "tile" | "residual-A" | "residual-B"
    dataset_a: SpatialDataset
    dataset_b: SpatialDataset
    self_join: bool = False
    mini_joins: tuple[MiniJoin, ...] = ()

    @property
    def input_records(self) -> int:
        return len(self.dataset_a) + len(self.dataset_b)

    def sub_joins(self) -> Iterator[MiniJoin]:
        """The task's sub-joins, uniformly: the mini-joins of a tile
        task, or the task itself as a single :class:`MiniJoin`."""
        if self.mini_joins:
            yield from self.mini_joins
        else:
            yield MiniJoin(
                label=self.kind,
                dataset_a=self.dataset_a,
                dataset_b=self.dataset_b,
                self_join=self.self_join,
            )


@dataclass
class ShardPlan:
    """The deterministic decomposition of one join into sub-joins.

    Accounting separates three ideas (they coincided in the legacy
    planner's happy path, which hid a reporting bug):

    - ``routed_*`` — entities the router assigned somewhere (legacy:
      to a cell bucket; two-layer: to at least one tile);
    - ``scheduled_*`` — distinct entities that appear in at least one
      planned task (an entity routed to a cell whose prefix exists in
      only one dataset is routed but *not* scheduled — it provably
      joins nothing);
    - ``replicated_*`` — extra per-task references beyond the distinct
      scheduled entities (two-layer presence replication; the legacy
      residual cross joins re-shipping whole sides).
    """

    shard_level: int
    tasks: list[ShardTask]
    planner: str = "residual"
    routed_a: int = 0
    routed_b: int = 0
    residual_a: int = 0  # entities of A in the residual shard (legacy)
    residual_b: int = 0
    scheduled_a: int = 0  # distinct entities appearing in >= 1 task
    scheduled_b: int = 0
    replicated_a: int = 0  # task references beyond the distinct entities
    replicated_b: int = 0

    @property
    def num_cells(self) -> int:
        return sum(1 for task in self.tasks if task.kind in ("cell", "tile"))

    @property
    def num_mini_joins(self) -> int:
        return sum(len(task.mini_joins) for task in self.tasks)

    def describe(self) -> dict[str, int | str]:
        return {
            "planner": self.planner,
            "shard_level": self.shard_level,
            "tasks": len(self.tasks),
            "cells": self.num_cells,
            "mini_joins": self.num_mini_joins,
            "routed_a": self.routed_a,
            "routed_b": self.routed_b,
            "scheduled_a": self.scheduled_a,
            "scheduled_b": self.scheduled_b,
            "replicated_a": self.replicated_a,
            "replicated_b": self.replicated_b,
            "residual_a": self.residual_a,
            "residual_b": self.residual_b,
        }

    def account_tasks(self) -> None:
        """Fill ``scheduled_*``/``replicated_*`` from the task list."""
        scheduled_a: set[int] = set()
        scheduled_b: set[int] = set()
        references_a = references_b = 0
        for task in self.tasks:
            references_a += len(task.dataset_a)
            references_b += len(task.dataset_b)
            scheduled_a.update(entity.eid for entity in task.dataset_a)
            scheduled_b.update(entity.eid for entity in task.dataset_b)
        self.scheduled_a = len(scheduled_a)
        self.scheduled_b = len(scheduled_b)
        self.replicated_a = references_a - self.scheduled_a
        self.replicated_b = references_b - self.scheduled_b


def _expanded(entity: Entity, margin: float):
    """The box the planner routes on — the same margin-expanded MBR
    the join algorithms partition on."""
    if margin == 0.0:
        return entity.mbr
    return entity.mbr.expanded(margin).clamped()


def _route(
    dataset: SpatialDataset,
    shard_level: int,
    assigner: LevelAssigner,
    curve: SpaceFillingCurve,
    margin: float,
) -> tuple[dict[int, list[Entity]], list[Entity]]:
    """Legacy single-assignment routing: split one dataset into cell
    buckets (keyed by the top ``2k`` Hilbert key bits) and the residual
    list of large entities."""
    shift = 2 * (curve.order - shard_level)
    cells: dict[int, list[Entity]] = {}
    residual: list[Entity] = []
    for entity in dataset:
        box = _expanded(entity, margin)
        if assigner.level(box) >= shard_level:
            prefix = curve.key_of_normalized(*box.center) >> shift
            cells.setdefault(prefix, []).append(entity)
        else:
            residual.append(entity)
    return cells, residual


def plan_shards(
    dataset_a: SpatialDataset,
    dataset_b: SpatialDataset,
    shard_level: int,
    curve: SpaceFillingCurve | None = None,
    margin: float = 0.0,
) -> ShardPlan:
    """Plan with the legacy ``residual`` planner (see module docstring).

    The plan is a pure function of the inputs and ``shard_level`` —
    independent of how many workers later execute it — so results are
    reproducible across worker counts.  Passing the same object for
    both datasets plans a self join.
    """
    curve = curve or HilbertCurve()
    _check_level(shard_level, curve)
    assigner = LevelAssigner(order=curve.order, max_level=curve.order)
    self_join = dataset_a is dataset_b

    cells_a, residual_a = _route(dataset_a, shard_level, assigner, curve, margin)
    if self_join:
        cells_b, residual_b = cells_a, residual_a
    else:
        cells_b, residual_b = _route(dataset_b, shard_level, assigner, curve, margin)

    width = _prefix_width(shard_level)
    tasks: list[ShardTask] = []
    for prefix in sorted(set(cells_a) & set(cells_b)):
        sub_a = SpatialDataset(f"{dataset_a.name}/cell-{prefix:0{width}x}", cells_a[prefix])
        if self_join:
            sub_b = sub_a
        else:
            sub_b = SpatialDataset(
                f"{dataset_b.name}/cell-{prefix:0{width}x}", cells_b[prefix]
            )
        tasks.append(
            ShardTask(
                shard_id=f"cell-{prefix:0{width}x}",
                kind="cell",
                dataset_a=sub_a,
                dataset_b=sub_b,
                self_join=self_join,
            )
        )

    # Residual(A) joins *all* of B (a large A entity may meet any B
    # entity); for a self join this is also where residual-residual
    # and residual-small pairs are found, mirrored pairs included.
    if residual_a and len(dataset_b):
        tasks.append(
            ShardTask(
                shard_id=RESIDUAL_A,
                kind=RESIDUAL_A,
                dataset_a=SpatialDataset(f"{dataset_a.name}/residual", residual_a),
                dataset_b=dataset_b,
            )
        )
    # Small(A) joins residual(B): excluding residual(A) on the left
    # keeps residual-residual pairs from being counted twice.  A self
    # join skips this task — residual(A) join A already covered it.
    if not self_join and residual_b:
        small_a = [
            entity for bucket in (cells_a[p] for p in sorted(cells_a)) for entity in bucket
        ]
        if small_a:
            tasks.append(
                ShardTask(
                    shard_id=RESIDUAL_B,
                    kind=RESIDUAL_B,
                    dataset_a=SpatialDataset(f"{dataset_a.name}/small", small_a),
                    dataset_b=SpatialDataset(f"{dataset_b.name}/residual", residual_b),
                )
            )

    plan = ShardPlan(
        shard_level=shard_level,
        tasks=tasks,
        planner="residual",
        routed_a=sum(len(bucket) for bucket in cells_a.values()),
        routed_b=sum(len(bucket) for bucket in cells_b.values()),
        residual_a=len(residual_a),
        residual_b=len(residual_b),
    )
    plan.account_tasks()
    return plan


def _two_layer_classes(
    dataset: SpatialDataset,
    shard_level: int,
    curve: SpaceFillingCurve,
    margin: float,
) -> dict[tuple[int, int], dict[str, list[Entity]]]:
    """Tile -> class -> entities, for one side of a two-layer plan.

    Presence uses plain :meth:`~SpaceFillingCurve.quantize` for *both*
    corners (never the closed-interval ``quantize_hi``): an MBR whose
    high edge lies exactly on a grid line must also be present in the
    tile above the line, because a boundary-touching partner starting
    there makes that tile the pair's reference tile.  Over-generous
    presence can never create duplicate pairs — a pair is emitted only
    in its unique reference tile (DESIGN.md §14) — while under-presence
    would lose boundary-touch pairs.
    """
    shift = curve.order - shard_level
    tiles: dict[tuple[int, int], dict[str, list[Entity]]] = {}
    for entity in dataset:
        box = _expanded(entity, margin)
        start_x = curve.quantize(box.xlo) >> shift
        start_y = curve.quantize(box.ylo) >> shift
        end_x = curve.quantize(box.xhi) >> shift
        end_y = curve.quantize(box.yhi) >> shift
        for tile_x in range(start_x, end_x + 1):
            west = tile_x > start_x
            for tile_y in range(start_y, end_y + 1):
                south = tile_y > start_y
                cls = ("D" if west else "C") if south else ("B" if west else "A")
                tiles.setdefault((tile_x, tile_y), {}).setdefault(cls, []).append(
                    entity
                )
    return tiles


def plan_two_layer(
    dataset_a: SpatialDataset,
    dataset_b: SpatialDataset,
    shard_level: int,
    curve: SpaceFillingCurve | None = None,
    margin: float = 0.0,
) -> ShardPlan:
    """Plan with the ``two-layer`` class-based planner (module docstring).

    One :class:`ShardTask` per occupied tile, carrying that tile's
    class-pair mini-joins; tiles are emitted in Hilbert-prefix order
    and named ``cell-<prefix>`` exactly like the legacy planner's cell
    shards, so fault-injection directives address shards identically
    under either planner.  Tiles whose mini-joins would all be empty
    (e.g. only one side present) are not scheduled.
    """
    curve = curve or HilbertCurve()
    _check_level(shard_level, curve)
    self_join = dataset_a is dataset_b

    tiles_a = _two_layer_classes(dataset_a, shard_level, curve, margin)
    tiles_b = (
        tiles_a
        if self_join
        else _two_layer_classes(dataset_b, shard_level, curve, margin)
    )

    shift = curve.order - shard_level
    width = _prefix_width(shard_level)
    by_prefix: dict[int, tuple[int, int]] = {
        curve.key(tile_x << shift, tile_y << shift) >> (2 * shift): (tile_x, tile_y)
        for tile_x, tile_y in set(tiles_a) | set(tiles_b)
    }

    combos = TWO_LAYER_SELF_COMBOS if self_join else TWO_LAYER_COMBOS
    tasks: list[ShardTask] = []
    for prefix in sorted(by_prefix):
        tile = by_prefix[prefix]
        classes_a = tiles_a.get(tile, {})
        classes_b = classes_a if self_join else tiles_b.get(tile, {})
        shard_id = f"cell-{prefix:0{width}x}"
        subsets_a = {
            cls: SpatialDataset(f"{dataset_a.name}/{shard_id}/{cls}", entities)
            for cls, entities in classes_a.items()
        }
        subsets_b = (
            subsets_a
            if self_join
            else {
                cls: SpatialDataset(f"{dataset_b.name}/{shard_id}/{cls}", entities)
                for cls, entities in classes_b.items()
            }
        )
        minis: list[MiniJoin] = []
        for class_a, class_b in combos:
            sub_a = subsets_a.get(class_a)
            sub_b = subsets_b.get(class_b)
            if sub_a is None or sub_b is None:
                continue
            mini_self = self_join and class_a == "A" and class_b == "A"
            minis.append(
                MiniJoin(
                    label=f"{class_a}x{class_b}",
                    dataset_a=sub_a,
                    dataset_b=sub_a if mini_self else sub_b,
                    self_join=mini_self,
                )
            )
        if not minis:
            continue
        union_a = SpatialDataset(
            f"{dataset_a.name}/{shard_id}",
            [entity for cls in "ABCD" for entity in classes_a.get(cls, ())],
        )
        union_b = (
            union_a
            if self_join
            else SpatialDataset(
                f"{dataset_b.name}/{shard_id}",
                [entity for cls in "ABCD" for entity in classes_b.get(cls, ())],
            )
        )
        tasks.append(
            ShardTask(
                shard_id=shard_id,
                kind="tile",
                dataset_a=union_a,
                dataset_b=union_b,
                self_join=self_join,
                mini_joins=tuple(minis),
            )
        )

    plan = ShardPlan(
        shard_level=shard_level,
        tasks=tasks,
        planner="two-layer",
        routed_a=len(dataset_a),
        routed_b=len(dataset_b),
    )
    plan.account_tasks()
    return plan


def plan_join(
    dataset_a: SpatialDataset,
    dataset_b: SpatialDataset,
    shard_level: int,
    curve: SpaceFillingCurve | None = None,
    margin: float = 0.0,
    planner: str = DEFAULT_PLANNER,
) -> ShardPlan:
    """Plan a sharded join with the selected planner."""
    if planner not in PLANNERS:
        raise ValueError(
            f"unknown planner {planner!r}; choose from {PLANNERS}"
        )
    plan_fn = plan_shards if planner == "residual" else plan_two_layer
    return plan_fn(dataset_a, dataset_b, shard_level, curve=curve, margin=margin)


def _check_level(shard_level: int, curve: SpaceFillingCurve) -> None:
    if not 1 <= shard_level <= curve.order:
        raise ValueError(
            f"shard_level {shard_level} outside [1, {curve.order}]"
        )


def _prefix_width(shard_level: int) -> int:
    """Hex digits covering a ``2k``-bit Hilbert prefix."""
    return -(-shard_level // 2)
