"""Tests for repro.geometry.predicates (the refinement step)."""

import pytest

from repro.geometry.entity import Entity
from repro.geometry.predicates import (
    geometries_intersect,
    geometries_within_distance,
    refine_pair,
)
from repro.geometry.rect import Rect
from repro.geometry.shapes import Point, Polygon, Segment


class TestIntersect:
    def test_point_point_same(self):
        assert geometries_intersect(Point(0.5, 0.5), Point(0.5, 0.5))

    def test_point_point_different(self):
        assert not geometries_intersect(Point(0.5, 0.5), Point(0.6, 0.5))

    def test_point_on_segment(self):
        assert geometries_intersect(Point(0.5, 0.5), Segment(0, 0, 1, 1))

    def test_point_off_segment(self):
        assert not geometries_intersect(Point(0.5, 0.6), Segment(0, 0, 1, 1))

    def test_segment_segment(self):
        assert geometries_intersect(Segment(0, 0, 1, 1), Segment(0, 1, 1, 0))

    def test_point_in_polygon(self):
        poly = Polygon(((0, 0), (1, 0), (1, 1), (0, 1)))
        assert geometries_intersect(poly, Point(0.5, 0.5))
        assert geometries_intersect(Point(0.5, 0.5), poly)

    def test_segment_inside_polygon(self):
        poly = Polygon(((0, 0), (1, 0), (1, 1), (0, 1)))
        inner = Segment(0.2, 0.2, 0.4, 0.4)
        assert geometries_intersect(poly, inner)

    def test_rect_rect(self):
        assert geometries_intersect(Rect(0, 0, 0.5, 0.5), Rect(0.4, 0.4, 1, 1))
        assert not geometries_intersect(Rect(0, 0, 0.3, 0.3), Rect(0.4, 0.4, 1, 1))

    def test_rect_point(self):
        assert geometries_intersect(Rect(0, 0, 0.5, 0.5), Point(0.25, 0.25))
        assert not geometries_intersect(Rect(0, 0, 0.5, 0.5), Point(0.75, 0.25))

    def test_rect_segment(self):
        assert geometries_intersect(Rect(0, 0, 0.5, 0.5), Segment(0.4, 0.4, 0.9, 0.9))
        assert not geometries_intersect(
            Rect(0, 0, 0.2, 0.2), Segment(0.8, 0.0, 0.8, 1.0)
        )


class TestWithinDistance:
    def test_points_within(self):
        assert geometries_within_distance(Point(0, 0), Point(0.3, 0.4), 0.5)

    def test_points_just_beyond(self):
        assert not geometries_within_distance(Point(0, 0), Point(0.3, 0.4), 0.49)

    def test_negative_eps_raises(self):
        with pytest.raises(ValueError):
            geometries_within_distance(Point(0, 0), Point(1, 1), -0.1)

    def test_segment_within(self):
        assert geometries_within_distance(
            Segment(0, 0, 1, 0), Segment(0, 0.1, 1, 0.1), 0.1
        )

    def test_polygon_point_within(self):
        poly = Polygon(((0, 0), (1, 0), (1, 1), (0, 1)))
        assert geometries_within_distance(poly, Point(1.05, 0.5), 0.1)
        assert not geometries_within_distance(poly, Point(1.2, 0.5), 0.1)


class TestRefinePair:
    def test_exact_geometry_beats_mbr(self):
        # Two diagonal segments whose MBRs overlap but which do not cross.
        a = Entity.from_geometry(1, Segment(0.0, 0.0, 0.4, 0.4))
        b = Entity.from_geometry(2, Segment(0.3, 0.0, 0.4, 0.05))
        assert a.mbr.intersects(b.mbr)
        assert not refine_pair(a, b)

    def test_mbr_fallback_when_no_geometry(self):
        a = Entity(1, Rect(0, 0, 0.5, 0.5))
        b = Entity(2, Rect(0.4, 0.4, 1, 1))
        assert refine_pair(a, b)

    def test_distance_refinement(self):
        a = Entity.from_geometry(1, Point(0.0, 0.0))
        b = Entity.from_geometry(2, Point(0.0, 0.2))
        assert refine_pair(a, b, eps=0.2)
        assert not refine_pair(a, b, eps=0.19)
