"""The Z-order (Morton) curve — the simplest recursive subdivision
order, listed by the paper as a drop-in alternative to Hilbert."""

from __future__ import annotations

import numpy as np

from repro.curves.base import SpaceFillingCurve


def interleave_bits(x: int, y: int, order: int) -> int:
    """Interleave the low ``order`` bits of x and y (x in even positions
    counting from bit 1, i.e. x supplies the more significant bit of each
    2-bit digit)."""
    key = 0
    for bit in range(order - 1, -1, -1):
        key = (key << 2) | (((x >> bit) & 1) << 1) | ((y >> bit) & 1)
    return key


def deinterleave_bits(key: int, order: int) -> tuple[int, int]:
    """Inverse of :func:`interleave_bits`."""
    x = y = 0
    for bit in range(order - 1, -1, -1):
        digit = (key >> (2 * bit)) & 3
        x = (x << 1) | (digit >> 1)
        y = (y << 1) | (digit & 1)
    return x, y


def _spread_bits64(values: np.ndarray) -> np.ndarray:
    """Spread each bit of a 32-bit lane into the even positions of a
    64-bit lane (the standard magic-mask Morton spread)."""
    v = values.astype(np.uint64)
    v = (v | (v << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
    v = (v | (v << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    v = (v | (v << np.uint64(2))) & np.uint64(0x3333333333333333)
    v = (v | (v << np.uint64(1))) & np.uint64(0x5555555555555555)
    return v


class ZOrderCurve(SpaceFillingCurve):
    """2-D Morton order of the given order (bits per dimension)."""

    name = "zorder"

    def key(self, x: int, y: int) -> int:
        if not (0 <= x < self.side and 0 <= y < self.side):
            raise ValueError(f"({x}, {y}) outside the {self.side}^2 grid")
        return interleave_bits(x, y, self.order)

    def point(self, key: int) -> tuple[int, int]:
        if not 0 <= key <= self.max_key:
            raise ValueError(f"key {key} outside [0, {self.max_key}]")
        return deinterleave_bits(key, self.order)

    def keys(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        x = np.asarray(xs, dtype=np.uint64)
        y = np.asarray(ys, dtype=np.uint64)
        if x.shape != y.shape:
            raise ValueError("xs and ys must have the same shape")
        keys = (_spread_bits64(x) << np.uint64(1)) | _spread_bits64(y)
        # int64, matching the scalar path: keys fit (order <= 31 means
        # key < 2^62), and uint64 results would silently promote to
        # float64 when mixed with int64 arithmetic downstream.
        return keys.astype(np.int64)
