"""The long-lived spatial-join service (DESIGN.md section 15).

A batch join reads cold data, joins, and exits.  The service keeps the
S3J index *resident*: partitioned + Hilbert-sorted level files stay
open across queries, incremental inserts/deletes are absorbed into an
in-memory per-level delta merged at query time (a level file is just a
sorted run — the LSM idiom), and a background compactor folds the delta
back into the level files once it grows past a threshold.

Layers:

- :mod:`repro.service.index` — :class:`PersistentIndex`: the resident
  level files, the delta, tombstones, the epoch counter, compaction.
- :mod:`repro.service.scan` — the synchronized self-scan over *live*
  (base + delta) record streams, chunked instead of paged.
- :mod:`repro.service.api` — :class:`JoinService`: the asyncio query
  front-end with admission control, token-bucket rate limiting, a
  circuit breaker serving declared-partial results while open, and an
  LRU result cache keyed on (query, index epoch).
- :mod:`repro.service.server` — the JSON-lines TCP server behind
  ``repro serve``.
"""

from repro.service.api import (
    BreakerState,
    CircuitBreaker,
    JoinService,
    QueryOutcome,
    ResultCache,
    ServiceConfig,
    TokenBucket,
)
from repro.service.index import PersistentIndex
from repro.service.scan import live_self_scan
from repro.service.server import ServiceServer

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "JoinService",
    "PersistentIndex",
    "QueryOutcome",
    "ResultCache",
    "ServiceConfig",
    "ServiceServer",
    "TokenBucket",
    "live_self_scan",
]
