"""Cost models: turn ledger counts into simulated seconds.

The paper ran on an IBM RS6000 43P with a Seagate Hawk disk (average
access time including latency: 18.1 ms for random reads) and computed
Hilbert values in under 10 microseconds each.  We do not have that
hardware; instead the :class:`DiskModel` and :class:`CpuModel` convert
the counts recorded by :class:`~repro.storage.iostats.IOStats` into a
simulated response time with the same cost structure, so the *relative*
phase times and algorithm rankings the paper reports are reproduced
(see DESIGN.md, substitution table).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.storage.iostats import PhaseStats


def sort_comparison_count(n: int) -> int:
    """Comparisons charged for an in-memory sort of ``n`` records:
    ``n * log2(n)``, the paper's sort-cost term.

    Shared by the external sorter's run formation, the plane sweep's
    input ordering, and the synchronized scan's per-page x-sort, so all
    three charge the ledger with one consistent formula.
    """
    if n < 2:
        return 0
    return int(n * math.log2(n))


@dataclass(frozen=True)
class DiskModel:
    """A simple seek + transfer disk.

    ``random_access_time`` is charged for every random page transfer
    (seek + rotational latency + transfer); sequential transfers pay
    only ``sequential_transfer_time``.  Defaults follow the paper's
    Seagate Hawk 4: 18.1 ms average random access; sequential transfer
    of a 4 KB page at roughly 5 MB/s mid-90s media rate ~ 0.8 ms.
    """

    random_access_time: float = 0.0181
    sequential_transfer_time: float = 0.0008

    def time(self, stats: PhaseStats) -> float:
        """Simulated disk seconds for the transfers in ``stats``."""
        random_ios = stats.random_reads + stats.random_writes
        sequential_ios = (
            stats.sequential_reads + stats.sequential_writes
        )
        return (
            random_ios * self.random_access_time
            + sequential_ios * self.sequential_transfer_time
        )


DEFAULT_CPU_COSTS: dict[str, float] = {
    "hilbert": 10e-6,       # per Hilbert value, paper section 4.1.1 (H)
    "level": 1e-6,          # per Level() computation (bit-prefix scan)
    "compare": 0.5e-6,      # per sort comparison
    "mbr_test": 0.25e-6,    # per MBR intersection test (4 compares)
    "refine": 5e-6,         # per exact-geometry refinement test
    "bitmap": 0.5e-6,       # per DSB bit set/probe
    "rtree": 2e-6,          # per R-tree node visit
    "partition": 0.5e-6,    # per entity routed to a partition/tile
    "fault_latency": 0.0181,  # per injected-fault latency unit: one
                              # random-access-equivalent stall (error
                              # detection + failed transfer), so chaos
                              # runs price recovery into response time
}
"""Per-operation CPU costs in seconds, scaled to the paper's 133 MHz
PowerPC (SPECint95 4.72).  The 10 us Hilbert cost is measured by the
authors; the others are set so that, e.g., the Hilbert computation
accounts for ~8% of S3J response time on the UN1/UN2 join as reported
in section 5.2.1."""


@dataclass(frozen=True)
class CpuModel:
    """Charges a fixed cost per counted CPU operation kind."""

    op_costs: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_CPU_COSTS)
    )

    def time(self, stats: PhaseStats) -> float:
        """Simulated CPU seconds for the operations in ``stats``.

        Unknown operation kinds are charged at the ``compare`` rate so
        that adding a new counter never silently costs zero.
        """
        fallback = self.op_costs.get("compare", 0.5e-6)
        return sum(
            count * self.op_costs.get(op, fallback)
            for op, count in stats.cpu_ops.items()
        )


@dataclass(frozen=True)
class CostModel:
    """Disk + CPU model; response time is their sum (single-threaded,
    non-overlapped I/O, as in the paper's prototype)."""

    disk: DiskModel = field(default_factory=DiskModel)
    cpu: CpuModel = field(default_factory=CpuModel)

    def response_time(self, stats: PhaseStats) -> float:
        """Simulated seconds: disk time plus CPU time."""
        return self.disk.time(stats) + self.cpu.time(stats)

    def to_dict(self) -> dict[str, object]:
        """JSON-ready parameters (for serialized run reports)."""
        return {
            "disk": {
                "random_access_time": self.disk.random_access_time,
                "sequential_transfer_time": self.disk.sequential_transfer_time,
            },
            "cpu": {"op_costs": dict(self.cpu.op_costs)},
        }

    @classmethod
    def from_dict(cls, data: dict) -> CostModel:
        return cls(
            disk=DiskModel(
                random_access_time=float(data["disk"]["random_access_time"]),
                sequential_transfer_time=float(
                    data["disk"]["sequential_transfer_time"]
                ),
            ),
            cpu=CpuModel(
                op_costs={
                    str(op): float(cost)
                    for op, cost in data["cpu"]["op_costs"].items()
                }
            ),
        )
