"""E-A1 — section 4's analytic I/O formulas versus the storage ledger.

The paper argues S3J's costs are simple enough for a query optimizer;
this bench validates equations 1-5 against measured page I/O for the
canonical uniform workload, and the PBSM/SHJ partition-phase equations
(10, 16, 17) against their implementations.  A final test runs the
same join on the durable (WAL + fsync) backend: the simulated ledger
must be identical to the memory backend's, and the DiskModel's
predicted seconds are printed against the real wall-clock.
"""

import time

import pytest

from repro.baselines.pbsm import PartitionBasedSpatialMergeJoin
from repro.baselines.shj import SpatialHashJoin
from repro.core.s3j import SizeSeparationSpatialJoin
from repro.costmodel.s3j import s3j_io
from repro.datagen.uniform import uniform_squares
from repro.filtertree.occupancy import level_fractions
from repro.storage.manager import StorageConfig, StorageManager

SIDE = 0.01
COUNT = 8_500  # 100 pages


def run(algorithm_cls, buffer_pages=64, backend="memory", **params):
    a = uniform_squares(COUNT, SIDE, seed=1, name="A")
    b = uniform_squares(COUNT, SIDE, seed=2, name="B")
    config = StorageConfig(buffer_pages=buffer_pages, backend=backend)
    with StorageManager(config) as storage:
        file_a = a.write_descriptors(storage, "in-a")
        file_b = b.write_descriptors(storage, "in-b")
        storage.phase_boundary()
        storage.stats.reset()
        algo = algorithm_cls(storage, **params)
        result = algo.join(file_a, file_b)
        return result, file_a.num_pages, file_b.num_pages


def test_s3j_equations_1_to_5(benchmark):
    result, pages_a, pages_b = benchmark.pedantic(
        lambda: run(SizeSeparationSpatialJoin), rounds=1, iterations=1
    )
    metrics = result.metrics
    fractions = level_fractions(SIDE)
    predicted = s3j_io(
        pages_a, pages_b, 64, fractions, fractions,
        metrics.details["result_pages"],
    )
    print("\n--- S3J: predicted vs measured page I/O ---")
    print(f"{'phase':<12}{'predicted':>10}{'measured':>10}")
    measured_by_phase = {
        "partition": metrics.phase_ios("partition"),
        "sort": metrics.phase_ios("sort"),
        "join": metrics.phase_ios("join"),
    }
    predicted_by_phase = {
        "partition": predicted.scan_ios,
        "sort": predicted.sort_ios,
        "join": predicted.join_ios,
    }
    for phase in measured_by_phase:
        print(f"{phase:<12}{predicted_by_phase[phase]:>10,}{measured_by_phase[phase]:>10,}")
        assert measured_by_phase[phase] == pytest.approx(
            predicted_by_phase[phase], rel=0.3
        ), phase
    assert metrics.total_ios == pytest.approx(predicted.total_ios, rel=0.2)
    benchmark.extra_info["predicted"] = predicted.total_ios
    benchmark.extra_info["measured"] = metrics.total_ios


def test_pbsm_partition_equation_10(benchmark):
    result, pages_a, pages_b = benchmark.pedantic(
        lambda: run(PartitionBasedSpatialMergeJoin, tiles_per_dim=16),
        rounds=1,
        iterations=1,
    )
    metrics = result.metrics
    r_a, r_b = metrics.replication_a, metrics.replication_b
    predicted = (1 + r_a) * pages_a + (1 + r_b) * pages_b
    # The first partitioning pass only (repartition work is extra).
    measured = metrics.phase_ios("partition")
    print(f"\nPBSM partition: eq.10 predicts {predicted:.0f}, measured {measured}")
    assert measured >= predicted * 0.85
    benchmark.extra_info["predicted_first_pass"] = predicted
    benchmark.extra_info["measured"] = measured


def test_shj_partition_equations_16_17(benchmark):
    result, pages_a, pages_b = benchmark.pedantic(
        lambda: run(SpatialHashJoin, num_partitions=12), rounds=1, iterations=1
    )
    metrics = result.metrics
    r_b = metrics.replication_b
    predicted = 12 + 2 * pages_a + (1 + r_b) * pages_b
    measured = metrics.phase_ios("partition")
    print(f"\nSHJ partition: eqs.16+17 predict {predicted:.0f}, measured {measured}")
    assert measured == pytest.approx(predicted, rel=0.2)
    benchmark.extra_info["predicted"] = predicted
    benchmark.extra_info["measured"] = measured


def test_s3j_durable_backend_model_vs_wall(benchmark):
    """The DiskModel's simulated seconds against real seconds on the
    durable (WAL + fsync-per-write) backend — and ledger parity: the
    physical backend must not perturb the simulated cost model."""
    baseline, _, _ = run(SizeSeparationSpatialJoin)

    def timed():
        start = time.perf_counter()
        result, pages_a, pages_b = run(
            SizeSeparationSpatialJoin, backend="durable"
        )
        return result, time.perf_counter() - start

    result, wall = benchmark.pedantic(timed, rounds=1, iterations=1)
    assert result.metrics.to_dict() == baseline.metrics.to_dict()
    assert sorted(result.pairs) == sorted(baseline.pairs)
    simulated = result.metrics.response_time
    print(
        f"\nS3J on durable: DiskModel predicts {simulated:.2f}s, "
        f"real wall {wall:.2f}s ({simulated / wall:.1f}x)"
    )
    benchmark.extra_info["simulated_s"] = simulated
    benchmark.extra_info["measured_wall_s"] = wall
