"""Exact predicate evaluation for the refinement step.

The filter step produces candidate pairs whose MBRs satisfy the join
predicate; :func:`refine_pair` then decides the predicate on the exact
geometries (section 2: "the actual spatial objects corresponding to the
candidate pairs are checked under the predicate").
"""

from __future__ import annotations

import math

from repro.geometry.entity import Entity, Geometry
from repro.geometry.rect import Rect
from repro.geometry.shapes import Point, Polygon, Segment


def geometries_intersect(a: Geometry, b: Geometry) -> bool:
    """Exact intersection test between any two geometry payloads."""
    return geometries_within_distance(a, b, 0.0)


def geometries_within_distance(a: Geometry, b: Geometry, eps: float) -> bool:
    """True when the minimum distance between ``a`` and ``b`` is <= ``eps``."""
    if eps < 0:
        raise ValueError("eps must be non-negative")
    return _min_distance(a, b) <= eps


def refine_pair(a: Entity, b: Entity, eps: float = 0.0) -> bool:
    """Refinement-step check of one candidate pair.

    ``eps == 0`` evaluates the *overlap* predicate; ``eps > 0``
    evaluates *distance within eps*.
    """
    return geometries_within_distance(a.exact_geometry(), b.exact_geometry(), eps)


def _min_distance(a: Geometry, b: Geometry) -> float:
    """Exact minimum Euclidean distance between two geometries.

    Dispatches on the (unordered) type pair; each branch is exact, not
    an MBR approximation.
    """
    if isinstance(a, Point) and isinstance(b, Point):
        return a.distance_to(b)
    if isinstance(a, Point):
        return _min_distance(b, a)

    if isinstance(a, Segment):
        if isinstance(b, Point):
            return a.distance_to_point(b.x, b.y)
        if isinstance(b, Segment):
            return a.distance_to(b)
        return _min_distance(b, a)

    if isinstance(a, Polygon):
        if isinstance(b, Point):
            if a.contains_point(b.x, b.y):
                return 0.0
            return min(e.distance_to_point(b.x, b.y) for e in a.edges())
        if isinstance(b, Segment):
            if a.contains_point(b.x1, b.y1) or a.contains_point(b.x2, b.y2):
                return 0.0
            return min(e.distance_to(b) for e in a.edges())
        if isinstance(b, Polygon):
            return a.distance_to(b)
        return _min_distance(b, a)

    if isinstance(a, Rect):
        if isinstance(b, Rect):
            return a.min_distance(b)
        return _rect_to_geometry_distance(a, b)

    raise TypeError(f"unsupported geometry type: {type(a).__name__}")


def _rect_to_geometry_distance(rect: Rect, geom: Geometry) -> float:
    """Distance from a solid rectangle to a point/segment/polygon."""
    if isinstance(geom, Point):
        dx = max(rect.xlo - geom.x, geom.x - rect.xhi, 0.0)
        dy = max(rect.ylo - geom.y, geom.y - rect.yhi, 0.0)
        return math.hypot(dx, dy)
    as_polygon = Polygon(
        (
            (rect.xlo, rect.ylo),
            (rect.xhi, rect.ylo),
            (rect.xhi, rect.yhi),
            (rect.xlo, rect.yhi),
        )
    )
    return _min_distance(as_polygon, geom)
