"""TIGER/Line-like road segment data sets (LB and MG stand-ins).

We do not ship the Census Bureau TIGER/Line extracts the paper used
(Long Beach County: 53,145 segments, coverage 0.15; Montgomery County:
39,000 segments, coverage 0.12).  This generator synthesizes data with
the same join-relevant properties — entity count, tiny skinny MBRs,
strong spatial clustering along connected road structures — by growing
random-walk road polylines out of a handful of town centers; each walk
step emits one segment entity.  See DESIGN.md's substitution table.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.entity import Entity
from repro.geometry.shapes import Segment
from repro.join.dataset import SpatialDataset


def road_segments(
    count: int,
    towns: int = 12,
    segment_length: float = 0.0035,
    town_spread: float = 0.08,
    turn_sigma: float = 0.35,
    seed: int = 0,
    name: str = "roads",
) -> SpatialDataset:
    """``count`` short line segments forming road-like polylines.

    ``towns`` cluster centers are scattered over the unit square; road
    walks start near a center with a random heading and advance in
    ``segment_length`` steps, the heading drifting by a Gaussian of
    ``turn_sigma`` radians per step (gentle curves with occasional
    sharp turns).  Walks reflect off the unit-square boundary.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if towns < 1:
        raise ValueError("need at least one town")
    if not 0.0 < segment_length < 0.5:
        raise ValueError("segment_length must be in (0, 0.5)")
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.1, 0.9, size=(towns, 2))
    # Bigger towns get more roads: Zipf-ish town weights.
    weights = 1.0 / np.arange(1, towns + 1)
    weights /= weights.sum()

    entities: list[Entity] = []
    walk_length = max(8, int(math.sqrt(count)))
    eid = 0
    while eid < count:
        town = rng.choice(towns, p=weights)
        cx, cy = centers[town]
        x = float(np.clip(cx + rng.normal(0.0, town_spread), 0.0, 1.0))
        y = float(np.clip(cy + rng.normal(0.0, town_spread), 0.0, 1.0))
        heading = rng.uniform(0.0, 2.0 * math.pi)
        for _ in range(walk_length):
            if eid >= count:
                break
            heading += rng.normal(0.0, turn_sigma)
            nx = x + segment_length * math.cos(heading)
            ny = y + segment_length * math.sin(heading)
            # Reflect at the boundary to keep roads inside the space.
            if not 0.0 <= nx <= 1.0:
                heading = math.pi - heading
                nx = min(max(nx, 0.0), 1.0)
            if not 0.0 <= ny <= 1.0:
                heading = -heading
                ny = min(max(ny, 0.0), 1.0)
            if nx != x or ny != y:
                entities.append(Entity.from_geometry(eid, Segment(x, y, nx, ny)))
                eid += 1
            x, y = nx, ny
    return SpatialDataset(
        name,
        entities,
        description=(
            f"{count} road-like segments ({towns} towns, "
            f"step {segment_length:g})"
        ),
    )
