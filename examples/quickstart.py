"""Quickstart: join two spatial data sets with S3J.

Run:  python examples/quickstart.py
"""

from repro import spatial_join
from repro.datagen import uniform_squares_by_coverage


def main() -> None:
    # Two data sets of axis-aligned squares, uniformly distributed over
    # the unit square (the paper's UN1/UN2 shape, at laptop scale).
    parcels = uniform_squares_by_coverage(
        10_000, coverage=0.4, seed=1, name="parcels"
    )
    wetlands = uniform_squares_by_coverage(
        10_000, coverage=0.9, seed=2, name="wetlands"
    )

    # Find every parcel whose MBR overlaps a wetland MBR.
    result = spatial_join(parcels, wetlands, algorithm="s3j")

    print(f"{len(result):,} overlapping (parcel, wetland) pairs")
    print()
    print("How the join ran:")
    print(" ", result.metrics.describe())
    print()
    print("Phase breakdown (simulated seconds on the paper's testbed):")
    for phase, seconds in result.metrics.breakdown().items():
        print(f"  {phase:<10} {seconds:8.2f} s")
    print()
    print(
        "S3J replicated nothing: r_A ="
        f" {result.metrics.replication_a}, r_B = {result.metrics.replication_b}"
    )
    print(
        "Level files used (level -> entities):",
        result.metrics.details["levels_a"],
    )


if __name__ == "__main__":
    main()
