"""CI smoke benchmark: one small instrumented run per algorithm.

Runs ``repro join --report --trace`` for every algorithm on a small
workload, validates that each report parses back into a
:class:`~repro.obs.report.RunReport` containing every Table-2 phase of
its algorithm and that each trace file is a well-formed Chrome
trace-event document, then leaves the JSON artifacts for CI to upload::

    python -m benchmarks.smoke --out-dir bench-artifacts --scale 0.05

With ``--workers N`` (default 2) the run also exercises the execution
observatory: an instrumented sharded join with the event log streaming
to JSONL, whose report must carry a populated event stream and
straggler analytics (one Gantt lane per shard, an imbalance factor),
rendered through ``repro report`` both as terminal timeline and as the
self-contained HTML artifact CI uploads.

Exits nonzero when a report is missing a phase (or anything else is
malformed), so the CI job fails loudly instead of shipping an empty
artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.cli import main as repro_main
from repro.experiments.runner import run_algorithm
from repro.experiments.workloads import workload_by_name
from repro.obs.events import events_from_jsonl
from repro.obs.report import TABLE2_PHASES, RunReport

WORKLOAD = "UN1-UN2"


def run_one(algorithm: str, out_dir: Path, scale: float) -> list[str]:
    """Run one algorithm; return a list of validation failures."""
    report_path = out_dir / f"smoke_{algorithm}.report.json"
    trace_path = out_dir / f"smoke_{algorithm}.trace.json"
    code = repro_main(
        [
            "join",
            "--algorithm",
            algorithm,
            "--workload",
            WORKLOAD,
            "--scale",
            str(scale),
            "--report",
            str(report_path),
            "--trace",
            str(trace_path),
        ]
    )
    if code != 0:
        return [f"{algorithm}: repro join exited with {code}"]

    failures: list[str] = []
    report = RunReport.load(str(report_path))
    for phase in TABLE2_PHASES[algorithm]:
        if phase not in report.metrics.phases:
            failures.append(f"{algorithm}: report is missing phase {phase!r}")
        elif report.metrics.phase_time(phase) <= 0.0:
            failures.append(
                f"{algorithm}: phase {phase!r} has no simulated time"
            )
        if report.phase_wall.get(phase, 0.0) <= 0.0:
            failures.append(f"{algorithm}: phase {phase!r} has no wall time")
    if report.pairs <= 0:
        failures.append(f"{algorithm}: no candidate pairs")

    with open(trace_path, encoding="utf-8") as handle:
        trace = json.load(handle)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        failures.append(f"{algorithm}: trace has no traceEvents")
    return failures


def run_sharded(algorithm: str, scale: float) -> list[str]:
    """Run one 2-worker sharded join; fail on any divergence from the
    serial pair set (count alone could mask compensating errors)."""
    workload = workload_by_name(WORKLOAD)
    dataset_a, dataset_b = workload.datasets(scale)
    predicate = workload.predicate()
    serial = run_algorithm(
        dataset_a, dataset_b, algorithm, predicate=predicate, scale=scale
    )
    sharded = run_algorithm(
        dataset_a, dataset_b, algorithm, predicate=predicate, scale=scale, workers=2
    )
    failures: list[str] = []
    if sharded.result.pairs != serial.result.pairs:
        failures.append(
            f"{algorithm}: sharded (--workers 2) found "
            f"{len(sharded.result.pairs)} pairs, serial found "
            f"{len(serial.result.pairs)}"
        )
    plan = sharded.result.metrics.details.get("plan")
    if not plan or plan["tasks"] < 1:
        failures.append(f"{algorithm}: sharded run reports no shard plan")
    print(
        f"sharded {algorithm}: {len(sharded.result.pairs):,} pairs over "
        f"{plan['tasks'] if plan else 0} sub-joins (= serial: "
        f"{sharded.result.pairs == serial.result.pairs})"
    )
    return failures


def run_observatory(out_dir: Path, scale: float, workers: int) -> list[str]:
    """One sharded instrumented run through the execution observatory.

    Streams the event log to JSONL, then requires the report to carry
    the event stream and straggler analytics (one lane per shard, an
    imbalance factor), and renders it with ``repro report`` — terminal
    view to stdout, HTML artifact for CI to upload.
    """
    report_path = out_dir / "smoke_observatory.report.json"
    events_path = out_dir / "smoke_observatory.events.jsonl"
    html_path = out_dir / "smoke_observatory.html"
    code = repro_main(
        [
            "join",
            "--algorithm",
            "s3j",
            "--workload",
            WORKLOAD,
            "--scale",
            str(scale),
            "--workers",
            str(workers),
            "--report",
            str(report_path),
            "--events",
            str(events_path),
        ]
    )
    if code != 0:
        return [f"observatory: repro join exited with {code}"]

    failures: list[str] = []
    report = RunReport.load(str(report_path))
    if not report.events:
        failures.append("observatory: report carries no events")
    stream = events_from_jsonl(events_path.read_text(encoding="utf-8"))
    if len(stream) != len(report.events):
        failures.append(
            f"observatory: streamed {len(stream)} events but the report "
            f"carries {len(report.events)}"
        )
    analytics = report.analytics or {}
    plan = report.metrics.details.get("plan") or {}
    lanes = analytics.get("shards") or []
    if plan.get("tasks") and len(lanes) != plan["tasks"]:
        failures.append(
            f"observatory: {len(lanes)} Gantt lanes for "
            f"{plan['tasks']} shards"
        )
    if not analytics.get("imbalance_factor"):
        failures.append("observatory: analytics has no imbalance factor")
    if analytics.get("workers") != workers:
        failures.append(
            f"observatory: analytics says {analytics.get('workers')} "
            f"workers, ran with {workers}"
        )

    # Render: terminal timeline to stdout, HTML artifact for upload.
    for render_args in (
        [str(report_path)],
        [str(report_path), "--html", str(html_path)],
    ):
        code = repro_main(["report", *render_args])
        if code != 0:
            failures.append(f"observatory: repro report exited with {code}")
    html = html_path.read_text(encoding="utf-8") if html_path.exists() else ""
    for probe in ("Shard Gantt lanes", "imbalance factor", "Span flame view"):
        if probe not in html:
            failures.append(f"observatory: HTML report is missing {probe!r}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", default="bench-artifacts")
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker count of the observatory run (0 skips it)",
    )
    args = parser.parse_args(argv)

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    failures: list[str] = []
    for algorithm in sorted(TABLE2_PHASES):
        print(f"=== smoke: {algorithm} ===")
        failures.extend(run_one(algorithm, out_dir, args.scale))
        failures.extend(run_sharded(algorithm, args.scale))
    if args.workers > 0:
        print(f"=== smoke: observatory ({args.workers} workers) ===")
        failures.extend(run_observatory(out_dir, args.scale, args.workers))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"smoke OK: artifacts in {out_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
