"""SHJ analytic I/O model (section 4.1.3, equations 16-19)."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class SHJCostBreakdown:
    """Page reads+writes per SHJ step."""

    sample_ios: int      # equation 16's cD term: random sampling reads
    partition_ios: int   # 2 S_A (eq. 16) + (1 + r_B) S_B (eq. 17)
    join_ios: int        # eq. 18 when partitions fit; blockwise otherwise

    @property
    def total_ios(self) -> int:
        return self.sample_ios + self.partition_ios + self.join_ios


def shj_io(
    pages_a: int,
    pages_b: int,
    memory_pages: int,
    num_partitions: int,
    replication_b: float,
    result_pages: int,
    sample_pages_per_partition: int = 1,
    partitions_fit: bool = True,
) -> SHJCostBreakdown:
    """Predicted SHJ page I/O.

    With ``partitions_fit=True`` the join phase is equation 18
    (``S_A + r_B S_B + J``).  Otherwise the blockwise fallback is
    modeled (the analysis's nested-loops case, equation 19): assuming
    uniform partition sizes ``S_A / D`` and ``r_B S_B / D``, each A
    block of ``M - 1`` pages rescans its B partition.
    """
    sample = sample_pages_per_partition * num_partitions
    partition = 2 * pages_a + math.ceil((1.0 + replication_b) * pages_b)
    rb_pages = replication_b * pages_b
    if partitions_fit:
        join = pages_a + math.ceil(rb_pages) + result_pages
    else:
        block = max(1, memory_pages - 1)
        part_a = pages_a / max(1, num_partitions)
        part_b = rb_pages / max(1, num_partitions)
        blocks = math.ceil(part_a / block)
        join = math.ceil(num_partitions * (part_a + blocks * part_b)) + result_pages
    return SHJCostBreakdown(
        sample_ios=sample, partition_ios=partition, join_ios=join
    )
